// Package dist is the wire protocol of distributed Time Warp runs: a
// coordinator process drives the unmodified machine, scheduler and GVT
// algorithm over a hollow engine and forwards every peer operation to
// the worker process hosting the real shard (see internal/tw's shard
// support for the control/data split that makes the trajectory
// byte-identical to an in-process run).
//
// Framing is a 4-byte big-endian length followed by a 1-byte message
// kind and a JSON payload. JSON matches the rest of the repo's wire
// surfaces (configs, checkpoints) and round-trips floats exactly;
// virtual times that can be +Inf travel as WireVT, a string-encoded
// float, because bare JSON numbers cannot represent infinity.
//
// The protocol is a strict request/response alternation on one
// connection: the coordinator sends KindInit once, then KindOp
// messages, and finally KindShutdown; the worker answers every message
// with exactly one KindResult or KindError. Synchronous round trips
// are the point, not a limitation — each forwarded operation must
// complete before the coordinator runs the next one, or the global
// interleaving (and with it the trajectory) would diverge from the
// in-process run.
package dist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"ggpdes/internal/telemetry"
	"ggpdes/internal/tw"
)

// ErrWorkerLost marks a coordinator-side transport failure: the worker
// connection broke mid-run. The serve layer classifies it as retryable
// — the coordinator redials the worker and resumes its shard from the
// last per-shard checkpoint.
var ErrWorkerLost = errors.New("dist: worker connection lost")

// Metric names the distributed layer registers.
const (
	// MetricMsgsSent / MetricMsgsReceived count protocol messages from
	// the coordinator's point of view.
	MetricMsgsSent     = "dist.msgs_sent"
	MetricMsgsReceived = "dist.msgs_received"
	// MetricBytesSent / MetricBytesReceived count framed wire bytes.
	MetricBytesSent     = "dist.bytes_sent"
	MetricBytesReceived = "dist.bytes_received"
	// MetricEventsRelayed / MetricAntisRelayed count cross-shard
	// positive events and anti-messages the coordinator relayed.
	MetricEventsRelayed = "dist.events_relayed"
	MetricAntisRelayed  = "dist.antis_relayed"
	// MetricGVTRounds counts distributed Mattern-cut completions (cut 2
	// of every GVT round observed by the coordinator).
	MetricGVTRounds = "dist.gvt_rounds"
	// MetricBatches counts coalesced op-batch frames sent;
	// MetricOpsCoalesced counts the round trips they saved (ops per
	// batch beyond the first).
	MetricBatches      = "dist.batches"
	MetricOpsCoalesced = "dist.ops_coalesced"
	// MetricReadsCached counts pure queries answered from the
	// coordinator's per-shard read cache without any frame at all.
	MetricReadsCached = "dist.reads_cached"
	// MetricWorkersConnected gauges the worker processes currently
	// attached to the coordinator.
	MetricWorkersConnected = "dist.workers.connected"
)

// Wire selects the encoding of hot-path op frames. Binary is the
// default; JSON is the debugging escape hatch (ggsim -wire json).
// Init, checkpoint, metrics and error frames are always JSON — they
// are rare and their payloads already have JSON codecs.
type Wire uint8

const (
	// WireBinary ships op batches as compact hand-rolled binary frames
	// (KindOpsB/KindResultB).
	WireBinary Wire = iota
	// WireJSON ships op batches as JSON frames (KindOps/KindResult).
	WireJSON
)

// String returns the wire mode's flag name.
func (w Wire) String() string {
	switch w {
	case WireBinary:
		return "binary"
	case WireJSON:
		return "json"
	default:
		return fmt.Sprintf("Wire(%d)", uint8(w))
	}
}

// ParseWire parses a -wire flag value.
func ParseWire(s string) (Wire, error) {
	switch s {
	case "binary":
		return WireBinary, nil
	case "json":
		return WireJSON, nil
	default:
		return 0, fmt.Errorf("dist: unknown wire mode %q (want binary or json)", s)
	}
}

// MsgKind tags a protocol frame.
type MsgKind uint8

const (
	// KindInit carries an InitMsg; the worker builds its shard engine.
	KindInit MsgKind = iota + 1
	// KindOp carries an OpRequest; the worker runs one engine operation.
	KindOp
	// KindResult carries a response payload (InitMsg and KindShutdown
	// are acknowledged with an empty one, KindOp with an OpResponse).
	KindResult
	// KindError carries an ErrorMsg; the request it answers failed.
	KindError
	// KindShutdown asks the worker to acknowledge and exit its serve
	// loop cleanly.
	KindShutdown
	// KindOps carries a JSON BatchMsg: a coalesced run of ops the
	// worker executes in order, answered with a KindResult BatchReply.
	KindOps
	// KindOpsB carries a binary-encoded batch (see codec.go), answered
	// with KindResultB.
	KindOpsB
	// KindResultB carries a binary-encoded BatchReply.
	KindResultB
)

// String returns the kind's wire-table name.
func (k MsgKind) String() string {
	switch k {
	case KindInit:
		return "init"
	case KindOp:
		return "op"
	case KindResult:
		return "result"
	case KindError:
		return "error"
	case KindShutdown:
		return "shutdown"
	case KindOps:
		return "ops"
	case KindOpsB:
		return "ops_binary"
	case KindResultB:
		return "result_binary"
	default:
		return fmt.Sprintf("MsgKind(%d)", uint8(k))
	}
}

// OpCode selects the engine operation a KindOp frame forwards.
type OpCode uint8

const (
	// Peer-scoped operations mirror tw.Peer's public surface; the
	// request names the peer and threads the coordinator's Envelope.
	OpDrain OpCode = iota + 1
	OpProcessBatch
	OpHasExecWork
	OpHasWork
	OpInputSize
	OpLocalMin
	OpRemoteMin
	OpTakeMinSent
	OpPeekMinSent
	OpFossilCollect
	// Worker-scoped operations act on the whole shard. OpInject relays
	// cross-shard wire events (no envelope — injection touches no
	// engine-global scalars); the quiesce trio and OpCaptureShard drive
	// the distributed checkpoint fixpoint; the rest are the segment
	// boundary's invariant/metrics sweep and series sampling.
	OpInject
	OpQuiescePass
	OpQuiesceDump
	OpQuiesceFlush
	OpCaptureShard
	OpCheckInvariants
	OpFlushPoolStats
	OpMetrics
	OpSeriesProbe
)

// String returns the op's wire-table name.
func (o OpCode) String() string {
	switch o {
	case OpDrain:
		return "drain"
	case OpProcessBatch:
		return "process_batch"
	case OpHasExecWork:
		return "has_exec_work"
	case OpHasWork:
		return "has_work"
	case OpInputSize:
		return "input_size"
	case OpLocalMin:
		return "local_min"
	case OpRemoteMin:
		return "remote_min"
	case OpTakeMinSent:
		return "take_min_sent"
	case OpPeekMinSent:
		return "peek_min_sent"
	case OpFossilCollect:
		return "fossil_collect"
	case OpInject:
		return "inject"
	case OpQuiescePass:
		return "quiesce_pass"
	case OpQuiesceDump:
		return "quiesce_dump"
	case OpQuiesceFlush:
		return "quiesce_flush"
	case OpCaptureShard:
		return "capture_shard"
	case OpCheckInvariants:
		return "check_invariants"
	case OpFlushPoolStats:
		return "flush_pool_stats"
	case OpMetrics:
		return "metrics"
	case OpSeriesProbe:
		return "series_probe"
	default:
		return fmt.Sprintf("OpCode(%d)", uint8(o))
	}
}

// WireVT is a virtual time on the wire. Several engine minimum
// operations legitimately return +Inf ("nothing pending"), which JSON
// numbers cannot carry, so virtual times travel as strings in Go's
// shortest round-trip float form.
type WireVT float64

// MarshalJSON implements json.Marshaler.
func (v WireVT) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, strconv.FormatFloat(float64(v), 'g', -1, 64)), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *WireVT) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("dist: virtual time not a string: %w", err)
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("dist: virtual time %q: %w", s, err)
	}
	*v = WireVT(f)
	return nil
}

// InitMsg tells a worker which shard of which run it hosts. Config is
// the run configuration in its canonical JSON wire form (the root
// package owns the codec); CacheKey lets the worker verify the decoded
// config hashes back, exactly like checkpoint restore does.
type InitMsg struct {
	Config   json.RawMessage `json:"config"`
	CacheKey string          `json:"cache_key"`
	// Shard is this worker's index; Workers the total count.
	Shard   int `json:"shard"`
	Workers int `json:"workers"`
	// Lo and Hi bound the worker's peer range [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// State, when non-nil, restores the shard from a quiesced engine
	// state (pending events outside the shard zeroed) instead of
	// building segment zero fresh.
	State *tw.EngineState `json:"state,omitempty"`
}

// OpRequest is one forwarded engine operation.
type OpRequest struct {
	Op OpCode `json:"op"`
	// Peer names the target of peer-scoped ops.
	Peer int `json:"peer,omitempty"`
	// Env threads the coordinator's engine-global scalars; nil only for
	// OpInject, which touches none of them.
	Env *tw.Envelope `json:"env,omitempty"`
	// GVT is OpFossilCollect's collection horizon.
	GVT WireVT `json:"gvt,omitempty"`
	// Events carries OpInject's relayed wire events.
	Events []tw.WireEvent `json:"events,omitempty"`
}

// OpResponse is the result of one forwarded operation. Fields are
// op-specific; Env and Stats ride on every enveloped op so the
// coordinator can mirror the worker's state before the next operation.
type OpResponse struct {
	// N carries integer results (drained/processed/collected counts,
	// input sizes); Flag boolean ones; VT virtual-time ones.
	N    int    `json:"n,omitempty"`
	Flag bool   `json:"flag,omitempty"`
	VT   WireVT `json:"vt"`
	// Env returns the engine-global scalars after the operation.
	Env *tw.Envelope `json:"env,omitempty"`
	// Stats returns every shard peer's cumulative counters (quiesce
	// passes mutate peers other than the named one).
	Stats []tw.PeerStats `json:"stats,omitempty"`
	// Cycles is the simulated CPU cost the operation charged; Worked
	// reports whether it charged at all (the coordinator must mirror
	// not just the amount but whether the CPU hook fired).
	Cycles uint64 `json:"cycles,omitempty"`
	Worked bool   `json:"worked,omitempty"`
	// Outbox carries cross-shard sends the operation produced, in
	// production order.
	Outbox []tw.WireEvent `json:"outbox,omitempty"`
	// Probes is OpSeriesProbe's per-peer series contribution.
	Probes []tw.PeerProbe `json:"probes,omitempty"`
	// Shard is OpCaptureShard's serialized slice of the engine.
	Shard *tw.ShardState `json:"shard,omitempty"`
	// Metrics is OpMetrics' worker registry export.
	Metrics *telemetry.MetricsState `json:"metrics,omitempty"`
}

// ErrorMsg is a KindError payload.
type ErrorMsg struct {
	Error string `json:"error"`
}

// BatchMsg is a KindOps payload: a coalesced run of operations the
// worker executes in order. The envelope rides once per batch and is
// applied before the first op — nothing coordinator-side runs between
// the batch's ops, so per-op re-application would install the same
// values. Per-op Env fields are unused inside a batch.
type BatchMsg struct {
	// Env threads the coordinator's engine-global scalars; nil for
	// inject-only batches, which touch none of them.
	Env *tw.Envelope `json:"env,omitempty"`
	Ops []OpRequest  `json:"ops"`
}

// OpResult is one batched operation's result: the op-specific value
// plus its individual CPU charge, so the coordinator can mirror each
// constituent charge in execution order.
type OpResult struct {
	N      int    `json:"n,omitempty"`
	Flag   bool   `json:"flag,omitempty"`
	VT     WireVT `json:"vt"`
	Cycles uint64 `json:"cycles,omitempty"`
	Worked bool   `json:"worked,omitempty"`
}

// BatchReply answers a batch: per-op results in execution order, the
// final envelope and statistics (exactly when the request carried an
// envelope), and the combined outbox in production order across the
// whole batch.
type BatchReply struct {
	Env     *tw.Envelope   `json:"env,omitempty"`
	Stats   []tw.PeerStats `json:"stats,omitempty"`
	Results []OpResult     `json:"results"`
	Outbox  []tw.WireEvent `json:"outbox,omitempty"`
}

// Batchable reports whether an op may ride in a coalesced batch frame.
// The hot path — drain/process, the GVT minima, fossil collection and
// injects — is batchable; init/checkpoint/metrics-adjacent ops are
// rare, carry structured payloads, and stay on single JSON KindOp
// frames.
func Batchable(op OpCode) bool {
	switch op {
	case OpDrain, OpProcessBatch, OpHasExecWork, OpHasWork, OpInputSize,
		OpLocalMin, OpRemoteMin, OpTakeMinSent, OpPeekMinSent,
		OpFossilCollect, OpInject:
		return true
	case OpQuiescePass, OpQuiesceDump, OpQuiesceFlush, OpCaptureShard,
		OpCheckInvariants, OpFlushPoolStats, OpMetrics, OpSeriesProbe:
		return false
	default:
		return false
	}
}

// PureRead reports whether an op leaves every observable value of the
// worker's shard unchanged: repeating it immediately is a provable
// no-op. Pure reads do not invalidate the coordinator's read cache.
// (Drain-side cleanup of already-cancelled queue heads does not count
// as a change — it never alters a subsequent result, only reclaims
// storage, and the first post-mutation read always goes to the wire.)
func PureRead(op OpCode) bool {
	switch op {
	case OpHasExecWork, OpHasWork, OpInputSize, OpRemoteMin,
		OpPeekMinSent, OpSeriesProbe:
		return true
	case OpDrain, OpProcessBatch, OpLocalMin, OpTakeMinSent,
		OpFossilCollect, OpInject, OpQuiescePass, OpQuiesceDump,
		OpQuiesceFlush, OpCaptureShard, OpCheckInvariants,
		OpFlushPoolStats, OpMetrics:
		return false
	default:
		return false
	}
}

// maxFrame bounds a frame's payload; anything larger is protocol
// corruption, not data.
const maxFrame = 1 << 28

// AppendMsg appends one framed message (header plus body) to dst, so a
// caller with a scratch buffer issues a single Write per frame.
func AppendMsg(dst []byte, kind MsgKind, body []byte) ([]byte, error) {
	if len(body)+1 > maxFrame {
		return dst, fmt.Errorf("dist: %v payload of %d bytes exceeds frame limit", kind, len(body))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)+1))
	dst = append(dst, byte(kind))
	return append(dst, body...), nil
}

// MarshalBody encodes a frame payload as JSON; a nil payload becomes
// an empty object.
func MarshalBody(kind MsgKind, payload any) ([]byte, error) {
	if payload == nil {
		return []byte("{}"), nil
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding %v payload: %w", kind, err)
	}
	return body, nil
}

// WriteMsg frames and writes one message in a single Write call and
// returns the bytes written. A nil payload writes an empty object.
func WriteMsg(w io.Writer, kind MsgKind, payload any) (int, error) {
	body, err := MarshalBody(kind, payload)
	if err != nil {
		return 0, err
	}
	return WriteRawMsg(w, kind, body)
}

// WriteRawMsg frames and writes one message with a pre-encoded body in
// a single Write call.
func WriteRawMsg(w io.Writer, kind MsgKind, body []byte) (int, error) {
	frame, err := AppendMsg(make([]byte, 0, 5+len(body)), kind, body)
	if err != nil {
		return 0, err
	}
	return w.Write(frame)
}

// ReadMsg reads one framed message and returns its kind, payload bytes
// and total wire size. The payload is freshly allocated; loops should
// prefer ReadMsgBuf with a reusable scratch buffer.
func ReadMsg(r io.Reader) (MsgKind, []byte, int, error) {
	kind, body, n, _, err := ReadMsgBuf(r, nil)
	return kind, body, n, err
}

// ReadMsgBuf reads one framed message into buf (grown as needed) and
// returns the kind, the payload slice aliasing buf, the total wire
// size, and the possibly-grown buffer for the caller to reuse. The
// payload is valid until the next ReadMsgBuf call with the same
// buffer.
func ReadMsgBuf(r io.Reader, buf []byte) (MsgKind, []byte, int, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > maxFrame {
		return 0, nil, 0, buf, fmt.Errorf("dist: frame length %d out of range", n)
	}
	if cap(buf) < int(n-1) {
		buf = make([]byte, n-1)
	}
	body := buf[:n-1]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, 0, buf, err
	}
	return MsgKind(hdr[4]), body, len(hdr) + len(body), buf, nil
}
