package harness

import (
	"fmt"
	"strings"
)

// Verdict grades a regenerated figure against the paper's qualitative
// shape: who wins where. It returns "PASS ..." when the shape holds,
// "PARTIAL ..." when it holds only in part — absolute factors are never
// graded, only directions and orderings.
func Verdict(r *Result) string {
	switch {
	case r.ID == "fig2":
		return verdictBalanced(r)
	case strings.HasPrefix(r.ID, "fig3") || strings.HasPrefix(r.ID, "fig4"):
		return verdictImbalanced(r)
	case strings.HasPrefix(r.ID, "fig5") || strings.HasPrefix(r.ID, "fig6"):
		return verdictApplication(r)
	case r.ID == "fig7a":
		return verdictAffinityLinear(r)
	case r.ID == "fig7b":
		return verdictAffinityNonLinear(r)
	default:
		return ""
	}
}

// ratesAt collects label -> committed rate at the given thread count.
func ratesAt(r *Result, threads int) map[string]float64 {
	out := map[string]float64{}
	for _, p := range r.Points {
		if p.Threads == threads {
			out[p.Label] = p.Res.CommittedEventRate
		}
	}
	return out
}

// threadPoints returns the distinct thread counts in ascending order.
func threadPoints(r *Result) []int {
	var out []int
	seen := map[int]bool{}
	for _, p := range r.Points {
		if !seen[p.Threads] {
			seen[p.Threads] = true
			out = append(out, p.Threads)
		}
	}
	return out
}

// verdictBalanced: demand-driven overhead small — GG within 15% of the
// same-GVT baseline at every point.
func verdictBalanced(r *Result) string {
	worst := 1.0
	for _, th := range threadPoints(r) {
		m := ratesAt(r, th)
		for _, pair := range [][2]string{
			{"GG-PDES-Async", "Baseline-Async"},
			{"GG-PDES-Sync", "Baseline-Sync"},
		} {
			gg, base := m[pair[0]], m[pair[1]]
			if base == 0 {
				continue
			}
			if ratio := gg / base; ratio < worst {
				worst = ratio
			}
		}
	}
	if worst >= 0.85 {
		return fmt.Sprintf("PASS: GG within %.0f%% of its baseline everywhere (paper: small overhead)", (1-worst)*100)
	}
	return fmt.Sprintf("PARTIAL: GG drops to %.2fx of its baseline at some point", worst)
}

// verdictImbalanced: at the largest (over-subscribed) point, the best
// GG line beats every baseline and every DD line.
func verdictImbalanced(r *Result) string {
	pts := threadPoints(r)
	last := pts[len(pts)-1]
	m := ratesAt(r, last)
	gg := maxWith(m, "GG")
	base := maxWith(m, "Baseline")
	dd := maxWith(m, "DD")
	switch {
	case gg > base && gg > dd:
		return fmt.Sprintf("PASS: at %d threads GG leads (GG/Baseline %.2fx, GG/DD %.2fx)", last, gg/base, gg/dd)
	case gg > base:
		return fmt.Sprintf("PARTIAL: at %d threads GG beats baselines (%.2fx) but not DD", last, gg/base)
	default:
		return fmt.Sprintf("PARTIAL: at %d threads GG/Baseline = %.2fx", last, gg/base)
	}
}

// verdictApplication (epidemics/traffic): GG >= baseline at the largest
// point and at full subscription or the point below.
func verdictApplication(r *Result) string {
	pts := threadPoints(r)
	last := pts[len(pts)-1]
	m := ratesAt(r, last)
	gg, base := maxWith(m, "GG"), maxWith(m, "Baseline")
	if base == 0 {
		return ""
	}
	if gg >= base {
		return fmt.Sprintf("PASS: GG/Baseline = %.2fx at %d threads", gg/base, last)
	}
	return fmt.Sprintf("PARTIAL: GG/Baseline = %.2fx at %d threads (paper: GG ahead)", gg/base, last)
}

// verdictAffinityLinear: dynamic within 10% of constant.
func verdictAffinityLinear(r *Result) string {
	worst := 1.0
	for _, th := range threadPoints(r) {
		m := ratesAt(r, th)
		if m["Constant"] == 0 {
			continue
		}
		if ratio := m["Dynamic"] / m["Constant"]; ratio < worst {
			worst = ratio
		}
	}
	if worst >= 0.9 {
		return fmt.Sprintf("PASS: dynamic within %.1f%% of constant under linear locality (paper: -0.5%%)", (1-worst)*100)
	}
	return fmt.Sprintf("PARTIAL: dynamic drops to %.2fx of constant", worst)
}

// verdictAffinityNonLinear: dynamic beats constant decisively at the
// largest point.
func verdictAffinityNonLinear(r *Result) string {
	pts := threadPoints(r)
	last := pts[len(pts)-1]
	m := ratesAt(r, last)
	if m["Constant"] == 0 {
		return ""
	}
	ratio := m["Dynamic"] / m["Constant"]
	if ratio > 1.2 {
		return fmt.Sprintf("PASS: dynamic %.1fx constant at %d threads under non-linear locality (paper: up to 15x)", ratio, last)
	}
	return fmt.Sprintf("PARTIAL: dynamic only %.2fx constant at %d threads", ratio, last)
}

func maxWith(m map[string]float64, prefix string) float64 {
	best := 0.0
	for label, v := range m {
		if strings.HasPrefix(label, prefix) && v > best {
			best = v
		}
	}
	return best
}
