// Package harness defines one experiment per table and figure of the
// paper's evaluation and regenerates the corresponding rows/series.
// Absolute numbers differ from the paper (the substrate is a simulated
// processor, not the authors' KNL testbed); what reproduces is the
// shape: which system wins, by roughly what factor, and where the
// crossovers fall.
package harness

import (
	"fmt"
	"io"
	"sort"

	"ggpdes"
	"ggpdes/internal/stats"
)

// Scale sizes experiments. Paper-scale runs (256 hardware threads, up
// to 4096 simulation threads, 128-4096 LPs per thread) are supported
// but expensive; the default scale shrinks the machine and workloads
// while preserving every ratio the figures depend on (threads per core,
// over-subscription factors, imbalance windows).
type Scale struct {
	// Name identifies the scale in reports.
	Name string
	// Machine is the simulated processor.
	Machine ggpdes.Machine
	// BaseSweep is the weak-scaling thread sweep up to the machine's
	// hardware contexts (Figure 2's x-axis).
	BaseSweep []int
	// OverSub maps an imbalance factor K to the maximum
	// over-subscription multiple of hardware contexts (the paper goes
	// to K/2 × contexts for 1-K models, e.g. 4096 threads at 1-16).
	MaxOverSub func(k int) int
	// PHOLDLPs, EpiLPs, TrafficLPs are LPs per thread per model.
	PHOLDLPs, EpiLPs, TrafficLPs int
	// EndTime is the virtual end time for every run.
	EndTime float64
	// GVTFrequency and ZeroCounterThreshold are the scheduler knobs
	// (paper: 200 and 2000), shrunk with the workload.
	GVTFrequency, ZeroCounterThreshold int
	// OptimismWindow bounds speculation (ROSS max_opt_lookahead);
	// essential at deep over-subscription.
	OptimismWindow float64
	// Seed drives model randomness.
	Seed uint64
}

// HWThreads returns the machine's hardware context count.
func (s Scale) HWThreads() int {
	m := s.Machine
	if m.Cores == 0 {
		m = ggpdes.KNL7230()
	}
	return m.Cores * m.SMTWidth
}

// Default returns the scale used for EXPERIMENTS.md and the benchmark
// harness: a 16-core, 2-way-SMT machine (32 hardware contexts) with
// over-subscription up to 8x, completing the full suite in minutes.
func Default() Scale {
	return Scale{
		Name:      "default-16x2",
		Machine:   ggpdes.Machine{Cores: 16, SMTWidth: 2, FreqHz: 1.3e9},
		BaseSweep: []int{8, 16, 32},
		MaxOverSub: func(k int) int {
			if k/2 > 8 {
				return 8
			}
			if k < 2 {
				return 1
			}
			return k / 2
		},
		PHOLDLPs:   8,
		EpiLPs:     16,
		TrafficLPs: 8,
		EndTime:    60,
		// The paper's ratio: threshold = 10 x GVT frequency, i.e. a
		// thread deactivates after ~10 workless GVT rounds.
		GVTFrequency:         40,
		ZeroCounterThreshold: 400,
		OptimismWindow:       10,
		Seed:                 1,
	}
}

// Tiny returns a minimal scale for unit tests.
func Tiny() Scale {
	s := Default()
	s.Name = "tiny-4x2"
	s.Machine = ggpdes.SmallMachine()
	s.BaseSweep = []int{4, 8}
	s.MaxOverSub = func(k int) int {
		if k >= 4 {
			return 2
		}
		return 1
	}
	s.PHOLDLPs = 4
	s.EpiLPs = 8
	s.TrafficLPs = 4
	s.EndTime = 30
	s.GVTFrequency = 20
	s.ZeroCounterThreshold = 200
	s.OptimismWindow = 10
	return s
}

// Paper returns the full KNL-7230 scale. Expect long host run times.
func Paper() Scale {
	return Scale{
		Name:      "paper-knl-64x4",
		Machine:   ggpdes.KNL7230(),
		BaseSweep: []int{32, 64, 128, 256},
		MaxOverSub: func(k int) int {
			if k < 2 {
				return 1
			}
			if k/2 > 16 {
				return 16
			}
			return k / 2
		},
		PHOLDLPs:             128,
		EpiLPs:               4096,
		TrafficLPs:           96,
		EndTime:              200,
		GVTFrequency:         200,
		ZeroCounterThreshold: 2000,
		OptimismWindow:       10,
		Seed:                 1,
	}
}

// SystemSpec names one line of a figure.
type SystemSpec struct {
	Label    string
	System   ggpdes.System
	GVT      ggpdes.GVT
	Affinity ggpdes.Affinity
}

// The six systems of Figures 2-4 and the three of Figures 5-6.
var (
	AllSix = []SystemSpec{
		{"Baseline-Sync", ggpdes.Baseline, ggpdes.Barrier, ggpdes.ConstantAffinity},
		{"Baseline-Async", ggpdes.Baseline, ggpdes.WaitFree, ggpdes.ConstantAffinity},
		{"DD-PDES-Sync", ggpdes.DDPDES, ggpdes.Barrier, ggpdes.ConstantAffinity},
		{"DD-PDES-Async", ggpdes.DDPDES, ggpdes.WaitFree, ggpdes.ConstantAffinity},
		{"GG-PDES-Sync", ggpdes.GGPDES, ggpdes.Barrier, ggpdes.ConstantAffinity},
		{"GG-PDES-Async", ggpdes.GGPDES, ggpdes.WaitFree, ggpdes.ConstantAffinity},
	}
	AsyncThree = []SystemSpec{
		{"Baseline", ggpdes.Baseline, ggpdes.Barrier, ggpdes.ConstantAffinity}, // paper's "Baseline" in §6.4+ is Baseline-Sync
		{"DD-PDES", ggpdes.DDPDES, ggpdes.WaitFree, ggpdes.ConstantAffinity},
		{"GG-PDES", ggpdes.GGPDES, ggpdes.WaitFree, ggpdes.ConstantAffinity},
	}
)

// Point is one measured figure point.
type Point struct {
	Label   string
	Threads int
	Res     *ggpdes.Results
}

// Result is a regenerated figure or table.
type Result struct {
	ID, Title  string
	PaperClaim string
	Points     []Point
	Tables     []*stats.Table
	Charts     []*stats.BarChart
	Notes      []string
}

// Experiment regenerates one paper figure/table.
type Experiment struct {
	ID         string
	Title      string
	PaperClaim string
	Run        func(s Scale, progress io.Writer) (*Result, error)
}

// logf writes progress when a writer is supplied.
func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}

// runOne executes a single configuration.
func runOne(s Scale, spec SystemSpec, model ggpdes.Model, threads int, progress io.Writer) (*ggpdes.Results, error) {
	cfg := ggpdes.Config{
		Model:                model,
		Threads:              threads,
		System:               spec.System,
		GVT:                  spec.GVT,
		Affinity:             spec.Affinity,
		EndTime:              s.EndTime,
		Seed:                 s.Seed,
		Machine:              s.Machine,
		GVTFrequency:         s.GVTFrequency,
		ZeroCounterThreshold: s.ZeroCounterThreshold,
		OptimismWindow:       s.OptimismWindow,
	}
	res, err := ggpdes.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s @ %d threads: %w", spec.Label, threads, err)
	}
	logf(progress, "  %-16s %5d thr  %14s  cycles=%s gvt/round=%s", spec.Label, threads,
		stats.Rate(res.CommittedEventRate), stats.Count(res.TotalCycles),
		stats.Seconds(res.GVTCPUSecondsPerRound()))
	return res, nil
}

// sweep runs every (system × threads) combination and assembles the
// committed-event-rate table every figure reports.
func sweep(s Scale, id, title, claim string, model func(threads int) ggpdes.Model,
	threadCounts []int, systems []SystemSpec, progress io.Writer) (*Result, error) {

	r := &Result{ID: id, Title: title, PaperClaim: claim}
	headers := append([]string{"threads"}, labels(systems)...)
	tbl := stats.NewTable(title+" — committed event rate", headers...)
	chart := stats.NewBarChart(title, "ev/s")
	for _, th := range threadCounts {
		row := []string{fmt.Sprint(th)}
		for _, spec := range systems {
			res, err := runOne(s, spec, model(th), th, progress)
			if err != nil {
				return nil, err
			}
			r.Points = append(r.Points, Point{Label: spec.Label, Threads: th, Res: res})
			row = append(row, stats.Rate(res.CommittedEventRate))
			chart.Add(fmt.Sprintf("%d threads", th), spec.Label, res.CommittedEventRate)
		}
		tbl.Add(row...)
	}
	r.Tables = append(r.Tables, tbl)
	r.Tables = append(r.Tables, percentileTable(r, title))
	r.Charts = append(r.Charts, chart)
	if s := Summary(r); s != "" {
		r.Notes = append(r.Notes, "headline ratios: "+s)
	}
	if v := Verdict(r); v != "" {
		r.Notes = append(r.Notes, "shape vs paper: "+v)
	}
	return r, nil
}

// percentileTable reports the tail behaviour behind each figure's
// rates: rollback depth and GVT round latency at p50/p95/p99. The
// medians say what the steady state looks like; the p99s expose the
// rollback cascades and straggler rounds averages hide.
func percentileTable(r *Result, title string) *stats.Table {
	tbl := stats.NewTable(title+" — tail percentiles (p50/p95/p99)",
		"threads", "system", "rollback depth", "gvt round cycles")
	for _, p := range r.Points {
		rb, gl := p.Res.RollbackDepth, p.Res.GVTRoundLatencyCycles
		tbl.Add(fmt.Sprint(p.Threads), p.Label,
			fmt.Sprintf("%.1f/%.1f/%.1f", rb.P50, rb.P95, rb.P99),
			fmt.Sprintf("%.3g/%.3g/%.3g", gl.P50, gl.P95, gl.P99))
	}
	return tbl
}

func labels(systems []SystemSpec) []string {
	out := make([]string, len(systems))
	for i, s := range systems {
		out[i] = s.Label
	}
	return out
}

// pholdSweep builds the thread sweep for a 1-K imbalanced PHOLD figure:
// the base weak-scaling points plus over-subscribed points, all
// divisible by K.
func pholdSweep(s Scale, k int) []int {
	var out []int
	for _, th := range s.BaseSweep {
		if th%max(k, 1) == 0 {
			out = append(out, th)
		}
	}
	hw := s.HWThreads()
	for f := 2; f <= s.MaxOverSub(k); f *= 2 {
		out = append(out, hw*f)
	}
	sort.Ints(out)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// trafficLPsFor picks an LPs-per-thread near approx such that threads ×
// LPs is a perfect square (the traffic grid).
func trafficLPsFor(threads, approx int) int {
	best := -1
	for lps := 1; lps <= 4*approx+4; lps++ {
		n := threads * lps
		r := intSqrt(n)
		if r*r == n {
			if best == -1 || absInt(lps-approx) < absInt(best-approx) {
				best = lps
			}
		}
	}
	if best == -1 {
		return threads // threads² is always a perfect square
	}
	return best
}

func intSqrt(n int) int {
	if n < 0 {
		return 0
	}
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Get returns the experiment with the given id, or nil.
func Get(id string) *Experiment {
	for _, e := range Experiments() {
		if e.ID == id {
			return e
		}
	}
	return nil
}
