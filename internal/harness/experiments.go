package harness

import (
	"fmt"
	"io"

	"ggpdes"
	"ggpdes/internal/stats"
)

// Experiments returns every paper figure/table experiment in order.
func Experiments() []*Experiment {
	return []*Experiment{
		fig2(),
		figImbalanced("fig3a", "Figure 3(a): 1-2 Imbalanced PHOLD", 2,
			"GG-PDES-Async beats Baseline-Sync by ~10% at full subscription and ~5% over-subscribed; DD-PDES competitive until over-subscription, then collapses."),
		figImbalanced("fig3b", "Figure 3(b): 1-4 Imbalanced PHOLD", 4,
			"GG-PDES-Async beats Baseline-Sync by ~17% at full subscription and ~14% at 4x over-subscription; Baseline-Sync well above Baseline-Async."),
		figImbalanced("fig4a", "Figure 4(a): 1-8 Imbalanced PHOLD", 8,
			"GG-PDES-Async beats Baseline-Sync by ~8.5% at full subscription, ~18% over-subscribed."),
		figImbalanced("fig4b", "Figure 4(b): 1-16 Imbalanced PHOLD", 16,
			"GG-PDES-Async beats Baseline-Sync by ~11% at full subscription, up to ~44% at the largest over-subscription; gains grow with temporal locality."),
		figEpidemics("fig5a", "Figure 5(a): Epidemics, 3/4 lock-down", 4,
			"GG-PDES beats Baseline by ~22% at full subscription, ~13% over-subscribed."),
		figEpidemics("fig5b", "Figure 5(b): Epidemics, 7/8 lock-down", 8,
			"GG-PDES beats Baseline by ~29% at full subscription, ~19% over-subscribed; the gap widens with lock-down rate."),
		figTraffic("fig6a", "Figure 6(a): Traffic, density gradient 0.35", 0.35,
			"GG-PDES slightly below Baseline at full subscription, ~24% above when over-subscribed 2x; larger scales degrade from rollbacks."),
		figTraffic("fig6b", "Figure 6(b): Traffic, density gradient 0.5", 0.5,
			"GG-PDES ~27% above Baseline at 2x over-subscription; rollback-driven degradation at larger scales."),
		figAffinity("fig7a", "Figure 7(a): CPU affinity, linear locality", false,
			"Dynamic affinity ~ Constant (within ~0.5%), both up to ~35% above No-Affinity."),
		figAffinity("fig7b", "Figure 7(b): CPU affinity, non-linear locality", true,
			"Dynamic affinity up to ~33% above No-Affinity and many-fold (paper: 15x) above Constant, which piles active threads onto few cores."),
		tblGVTTimes(),
		tblInstructions(),
		tblRollbacks(),
	}
}

// fig2 is the balanced PHOLD overhead check.
func fig2() *Experiment {
	return &Experiment{
		ID:    "fig2",
		Title: "Figure 2: Balanced PHOLD",
		PaperClaim: "With no execution locality the demand-driven systems add only noise: " +
			"GG-PDES-Async within ~4.3% of Baseline-Async; GG-PDES-Sync ~1.5% above Baseline-Sync.",
		Run: func(s Scale, progress io.Writer) (*Result, error) {
			return sweep(s, "fig2", "Figure 2: Balanced PHOLD",
				"demand-driven overhead is small on balanced loads",
				func(int) ggpdes.Model { return ggpdes.PHOLD{LPsPerThread: s.PHOLDLPs} },
				s.BaseSweep, AllSix, progress)
		},
	}
}

// figImbalanced builds the 1-K imbalanced PHOLD figures (3a-4b).
func figImbalanced(id, title string, k int, claim string) *Experiment {
	return &Experiment{
		ID: id, Title: title, PaperClaim: claim,
		Run: func(s Scale, progress io.Writer) (*Result, error) {
			r, err := sweep(s, id, title, claim,
				func(int) ggpdes.Model {
					return ggpdes.PHOLD{LPsPerThread: s.PHOLDLPs, Imbalance: k}
				},
				pholdSweep(s, k), AllSix, progress)
			if err != nil {
				return nil, err
			}
			r.Tables = append(r.Tables, gvtTimeTable(r, title))
			return r, nil
		},
	}
}

// figEpidemics builds Figures 5(a)/5(b).
func figEpidemics(id, title string, k int, claim string) *Experiment {
	return &Experiment{
		ID: id, Title: title, PaperClaim: claim,
		Run: func(s Scale, progress io.Writer) (*Result, error) {
			r, err := sweep(s, id, title, claim,
				func(int) ggpdes.Model {
					return ggpdes.Epidemics{
						LPsPerThread:     s.EpiLPs,
						LockdownGroups:   k,
						ContactRate:      3,
						TransmissionProb: 0.5,
						SeedsPerWindow:   8,
					}
				},
				pholdSweep(s, k), AsyncThree, progress)
			if err != nil {
				return nil, err
			}
			r.Tables = append(r.Tables, gvtTimeTable(r, title))
			return r, nil
		},
	}
}

// figTraffic builds Figures 6(a)/6(b).
func figTraffic(id, title string, gradient float64, claim string) *Experiment {
	return &Experiment{
		ID: id, Title: title, PaperClaim: claim,
		Run: func(s Scale, progress io.Writer) (*Result, error) {
			r, err := sweep(s, id, title, claim,
				func(threads int) ggpdes.Model {
					return ggpdes.Traffic{
						LPsPerThread:    trafficLPsFor(threads, s.TrafficLPs),
						DensityGradient: gradient,
					}
				},
				pholdSweep(s, 4), AsyncThree, progress)
			if err != nil {
				return nil, err
			}
			r.Tables = append(r.Tables, rollbackTable(r, title))
			return r, nil
		},
	}
}

// figAffinity builds Figures 7(a)/7(b): GG-PDES-Async under the three
// affinity algorithms on 1-4 imbalanced PHOLD with linear or non-linear
// locality.
func figAffinity(id, title string, nonLinear bool, claim string) *Experiment {
	systems := []SystemSpec{
		{"No-Affinity", ggpdes.GGPDES, ggpdes.WaitFree, ggpdes.NoAffinity},
		{"Constant", ggpdes.GGPDES, ggpdes.WaitFree, ggpdes.ConstantAffinity},
		{"Dynamic", ggpdes.GGPDES, ggpdes.WaitFree, ggpdes.DynamicAffinity},
	}
	return &Experiment{
		ID: id, Title: title, PaperClaim: claim,
		Run: func(s Scale, progress io.Writer) (*Result, error) {
			return sweep(s, id, title, claim,
				func(int) ggpdes.Model {
					return ggpdes.PHOLD{LPsPerThread: s.PHOLDLPs, Imbalance: 4, NonLinear: nonLinear}
				},
				pholdSweep(s, 4), systems, progress)
		},
	}
}

// gvtTimeTable derives the paper's in-text "average CPU time per GVT
// round" numbers from a figure's runs.
func gvtTimeTable(r *Result, title string) *stats.Table {
	tbl := stats.NewTable(title+" — GVT CPU time per round (accumulated across threads)",
		"system", "threads", "gvt s/round", "rounds")
	for _, p := range r.Points {
		tbl.Add(p.Label, fmt.Sprint(p.Threads),
			stats.Seconds(p.Res.GVTCPUSecondsPerRound()), fmt.Sprint(p.Res.GVTRounds))
	}
	return tbl
}

// rollbackTable derives the paper's §6.5 processed/rolled-back numbers.
func rollbackTable(r *Result, title string) *stats.Table {
	tbl := stats.NewTable(title+" — optimism behaviour",
		"system", "threads", "processed", "rolled back", "efficiency")
	for _, p := range r.Points {
		tbl.Add(p.Label, fmt.Sprint(p.Threads),
			stats.Count(p.Res.ProcessedEvents), stats.Count(p.Res.RolledBackEvents),
			fmt.Sprintf("%.0f%%", p.Res.Efficiency()*100))
	}
	return tbl
}

// tblGVTTimes reproduces the in-text GVT CPU time comparisons of
// §6.2-6.3 at over-subscribed scale.
func tblGVTTimes() *Experiment {
	return &Experiment{
		ID:    "gvt-times",
		Title: "In-text: GVT CPU time per round, over-subscribed imbalanced PHOLD",
		PaperClaim: "1-2 @ 512-way: GG-Async 3.88s, GG-Sync 3.15s vs Baseline-Async 137.3s, Baseline-Sync 33.1s. " +
			"GVT rounds get faster when de-scheduled threads stop participating.",
		Run: func(s Scale, progress io.Writer) (*Result, error) {
			r := &Result{ID: "gvt-times", Title: "GVT CPU time per round"}
			tbl := stats.NewTable("Over-subscribed GVT cost", "model", "system", "threads", "gvt s/round")
			for _, k := range []int{2, 4} {
				threads := s.HWThreads() * s.MaxOverSub(max(k, 2))
				model := ggpdes.PHOLD{LPsPerThread: s.PHOLDLPs, Imbalance: k}
				for _, spec := range AllSix {
					if spec.System == ggpdes.DDPDES {
						continue // paper's in-text numbers compare baseline vs GG
					}
					res, err := runOne(s, spec, model, threads, progress)
					if err != nil {
						return nil, err
					}
					r.Points = append(r.Points, Point{Label: spec.Label, Threads: threads, Res: res})
					tbl.Add(fmt.Sprintf("phold-1-%d", k), spec.Label, fmt.Sprint(threads),
						stats.Seconds(res.GVTCPUSecondsPerRound()))
				}
			}
			r.Tables = append(r.Tables, tbl)
			return r, nil
		},
	}
}

// tblInstructions reproduces the in-text instruction-count comparisons
// (PAPI) of §6.2-6.3 as total cycles executed.
func tblInstructions() *Experiment {
	return &Experiment{
		ID:    "instructions",
		Title: "In-text: instructions executed (cycles), over-subscribed imbalanced PHOLD",
		PaperClaim: "1-2 @ 512-way: GG-Async 0.16T instructions vs Baseline-Sync 0.31T; " +
			"1-4 @ 1024-way: 0.08T vs 0.29T — GG dispenses with inactive threads' work.",
		Run: func(s Scale, progress io.Writer) (*Result, error) {
			r := &Result{ID: "instructions", Title: "Instructions (cycles) executed"}
			tbl := stats.NewTable("Total cycles executed", "model", "system", "threads", "cycles")
			specs := []SystemSpec{
				{"Baseline-Sync", ggpdes.Baseline, ggpdes.Barrier, ggpdes.ConstantAffinity},
				{"Baseline-Async", ggpdes.Baseline, ggpdes.WaitFree, ggpdes.ConstantAffinity},
				{"GG-PDES-Async", ggpdes.GGPDES, ggpdes.WaitFree, ggpdes.ConstantAffinity},
			}
			for _, k := range []int{2, 4} {
				threads := s.HWThreads() * s.MaxOverSub(max(k, 2))
				model := ggpdes.PHOLD{LPsPerThread: s.PHOLDLPs, Imbalance: k}
				for _, spec := range specs {
					res, err := runOne(s, spec, model, threads, progress)
					if err != nil {
						return nil, err
					}
					r.Points = append(r.Points, Point{Label: spec.Label, Threads: threads, Res: res})
					tbl.Add(fmt.Sprintf("phold-1-%d", k), spec.Label, fmt.Sprint(threads),
						stats.Count(res.TotalCycles))
				}
			}
			r.Tables = append(r.Tables, tbl)
			return r, nil
		},
	}
}

// tblRollbacks reproduces §6.5's in-text rollback statistics on the
// largest traffic configuration.
func tblRollbacks() *Experiment {
	return &Experiment{
		ID:    "rollbacks",
		Title: "In-text: rollback statistics, Traffic 0.5 at largest scale",
		PaperClaim: "2048-way traffic 0.5: GG processes 540M events (360M rolled back); Baseline 562M (416M); " +
			"DD-PDES 1.18B (1.03B) — DD's stale scheduling explodes mis-speculation.",
		Run: func(s Scale, progress io.Writer) (*Result, error) {
			r := &Result{ID: "rollbacks", Title: "Traffic rollback statistics"}
			threads := s.HWThreads() * s.MaxOverSub(4)
			tbl := stats.NewTable(fmt.Sprintf("Traffic 0.5 @ %d threads", threads),
				"system", "processed", "rolled back", "committed", "efficiency")
			model := ggpdes.Traffic{
				LPsPerThread:    trafficLPsFor(threads, s.TrafficLPs),
				DensityGradient: 0.5,
			}
			for _, spec := range AsyncThree {
				res, err := runOne(s, spec, model, threads, progress)
				if err != nil {
					return nil, err
				}
				r.Points = append(r.Points, Point{Label: spec.Label, Threads: threads, Res: res})
				tbl.Add(spec.Label, stats.Count(res.ProcessedEvents), stats.Count(res.RolledBackEvents),
					stats.Count(res.CommittedEvents), fmt.Sprintf("%.0f%%", res.Efficiency()*100))
			}
			r.Tables = append(r.Tables, tbl)
			return r, nil
		},
	}
}
