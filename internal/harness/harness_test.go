package harness

import (
	"bytes"
	"ggpdes"
	"strings"
	"testing"
	"time"
)

func TestExperimentInventoryMatchesDesign(t *testing.T) {
	want := []string{
		"fig2", "fig3a", "fig3b", "fig4a", "fig4b",
		"fig5a", "fig5b", "fig6a", "fig6b", "fig7a", "fig7b",
		"gvt-times", "instructions", "rollbacks",
	}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("have %d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %q, want %q", i, exps[i].ID, id)
		}
		if exps[i].Title == "" || exps[i].PaperClaim == "" || exps[i].Run == nil {
			t.Errorf("experiment %q incomplete", exps[i].ID)
		}
	}
}

func TestGetByID(t *testing.T) {
	if Get("fig4b") == nil {
		t.Fatal("fig4b not found")
	}
	if Get("nope") != nil {
		t.Fatal("unknown id found")
	}
}

func TestScalesValid(t *testing.T) {
	for _, s := range []Scale{Tiny(), Default(), Paper()} {
		if s.HWThreads() <= 0 || len(s.BaseSweep) == 0 || s.EndTime <= 0 {
			t.Errorf("scale %q malformed", s.Name)
		}
		for _, th := range s.BaseSweep {
			if th > s.HWThreads() {
				t.Errorf("scale %q: base sweep %d exceeds hw threads %d", s.Name, th, s.HWThreads())
			}
		}
		if s.MaxOverSub(16) < 1 {
			t.Errorf("scale %q: MaxOverSub(16) < 1", s.Name)
		}
	}
}

func TestPHOLDSweepShape(t *testing.T) {
	s := Tiny()
	sw := pholdSweep(s, 4)
	if len(sw) == 0 {
		t.Fatal("empty sweep")
	}
	hw := s.HWThreads()
	sawOverSub := false
	for i, th := range sw {
		if th%4 != 0 {
			t.Errorf("sweep point %d not divisible by K", th)
		}
		if i > 0 && th <= sw[i-1] {
			t.Errorf("sweep not increasing: %v", sw)
		}
		if th > hw {
			sawOverSub = true
		}
	}
	if !sawOverSub {
		t.Errorf("1-4 sweep has no over-subscription point: %v", sw)
	}
}

func TestTrafficLPsPerfectSquare(t *testing.T) {
	for _, threads := range []int{4, 8, 16, 32, 64, 256} {
		lps := trafficLPsFor(threads, 8)
		n := threads * lps
		r := intSqrt(n)
		if r*r != n {
			t.Errorf("threads=%d lps=%d: %d not a perfect square", threads, lps, n)
		}
	}
}

func TestFig2RunsAtTinyScale(t *testing.T) {
	res, err := Get("fig2").Run(Tiny(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(Tiny().BaseSweep)*len(AllSix) {
		t.Fatalf("points = %d", len(res.Points))
	}
	if len(res.Tables) == 0 || res.Tables[0].Rows() == 0 {
		t.Fatal("no tables produced")
	}
	for _, p := range res.Points {
		if p.Res.CommittedEvents == 0 {
			t.Fatalf("%s @ %d committed nothing", p.Label, p.Threads)
		}
	}
}

func TestAffinityExperimentRuns(t *testing.T) {
	res, err := Get("fig7b").Run(Tiny(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The dynamic line must exist and have repinned.
	sawDynamic := false
	for _, p := range res.Points {
		if p.Label == "Dynamic" {
			sawDynamic = true
			if p.Res.Repins == 0 {
				t.Fatal("dynamic affinity never repinned")
			}
		}
	}
	if !sawDynamic {
		t.Fatal("no dynamic affinity points")
	}
}

func TestRollbacksExperimentRuns(t *testing.T) {
	res, err := Get("rollbacks").Run(Tiny(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Res.ProcessedEvents == 0 {
			t.Fatalf("%s processed nothing", p.Label)
		}
	}
}

func TestProgressLogging(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Get("instructions").Run(Tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "GG-PDES-Async") {
		t.Fatalf("progress log missing system labels:\n%s", buf.String())
	}
}

func TestWriteTextAndMarkdown(t *testing.T) {
	res, err := Get("fig2").Run(Tiny(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var txt, md bytes.Buffer
	WriteText(&txt, []*Result{res})
	if !strings.Contains(txt.String(), "Figure 2") || !strings.Contains(txt.String(), "Baseline-Sync") {
		t.Fatalf("text report incomplete:\n%s", txt.String())
	}
	WriteMarkdown(&md, Tiny(), []*Result{res}, 3*time.Second)
	out := md.String()
	for _, want := range []string{"# EXPERIMENTS", "## Figure 2", "**Paper:**", "```"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryExtractsRatios(t *testing.T) {
	res, err := Get("fig3a").Run(Tiny(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := Summary(res)
	if !strings.Contains(s, "GG/Baseline") {
		t.Fatalf("summary = %q", s)
	}
}

func TestVerdictsGradeFigures(t *testing.T) {
	// Synthesize results and check the grading logic directly.
	mk := func(id string, pts []Point) *Result { return &Result{ID: id, Points: pts} }
	pt := func(label string, threads int, rate float64) Point {
		return Point{Label: label, Threads: threads, Res: &ggpdes.Results{CommittedEventRate: rate}}
	}
	// Balanced: GG within 15% everywhere -> PASS.
	v := Verdict(mk("fig2", []Point{
		pt("Baseline-Async", 8, 100), pt("GG-PDES-Async", 8, 95),
		pt("Baseline-Sync", 8, 50), pt("GG-PDES-Sync", 8, 49),
	}))
	if !strings.HasPrefix(v, "PASS") {
		t.Fatalf("fig2 verdict = %q", v)
	}
	// Balanced with a collapse -> PARTIAL.
	v = Verdict(mk("fig2", []Point{
		pt("Baseline-Async", 8, 100), pt("GG-PDES-Async", 8, 50),
	}))
	if !strings.HasPrefix(v, "PARTIAL") {
		t.Fatalf("fig2 collapse verdict = %q", v)
	}
	// Imbalanced: GG leads at the last point -> PASS.
	v = Verdict(mk("fig4b", []Point{
		pt("Baseline-Sync", 64, 100), pt("DD-PDES-Async", 64, 80), pt("GG-PDES-Async", 64, 140),
	}))
	if !strings.HasPrefix(v, "PASS") {
		t.Fatalf("fig4b verdict = %q", v)
	}
	// Affinity non-linear: dynamic 2x constant -> PASS.
	v = Verdict(mk("fig7b", []Point{
		pt("Constant", 32, 50), pt("Dynamic", 32, 110), pt("No-Affinity", 32, 90),
	}))
	if !strings.HasPrefix(v, "PASS") {
		t.Fatalf("fig7b verdict = %q", v)
	}
	// Unknown ids yield no verdict.
	if Verdict(mk("rollbacks", nil)) != "" {
		t.Fatal("unexpected verdict for table experiment")
	}
}

func TestVerdictAppearsInNotes(t *testing.T) {
	res, err := Get("fig3a").Run(Tiny(), nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "shape vs paper") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no verdict note: %v", res.Notes)
	}
}
