package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Time-resolved run telemetry. A Series is a ring buffer of
// SeriesPoints, one per GVT round, sampled by the run loop at the
// moment each new GVT value commits. Sampling reads engine state and
// charges zero simulated cycles, so recording a series is
// trajectory-invariant: a run with and without a Series commits
// byte-identical event trajectories (asserted by
// TestSeriesPreservesTrajectories).

// SeriesPoint is one GVT round's observation of the run.
type SeriesPoint struct {
	// Round is the 1-based GVT round index; GVT the committed value.
	Round int     `json:"round"`
	GVT   float64 `json:"gvt"`
	// WallSeconds is elapsed wall-clock time since the run started;
	// AdvanceVT and AdvanceRate are the virtual-time delta since the
	// previous round and that delta per wall second.
	WallSeconds float64 `json:"wall_seconds"`
	AdvanceVT   float64 `json:"advance_vt"`
	AdvanceRate float64 `json:"advance_rate"`
	// ThreadLVTs holds each worker thread's local virtual time (the
	// maximum executed timestamp across its LPs). MeanLVT/MinLVT/
	// MaxLVT digest it; HorizonWidth is max-min and HorizonRoughness
	// the mean squared deviation w² from the mean — the virtual-time-
	// horizon statistics of Korniss et al.
	ThreadLVTs       []float64 `json:"thread_lvts"`
	MeanLVT          float64   `json:"mean_lvt"`
	MinLVT           float64   `json:"min_lvt"`
	MaxLVT           float64   `json:"max_lvt"`
	HorizonWidth     float64   `json:"horizon_width"`
	HorizonRoughness float64   `json:"horizon_roughness"`
	// Cumulative engine totals as of this round.
	Processed  uint64 `json:"processed"`
	Committed  uint64 `json:"committed"`
	RolledBack uint64 `json:"rolled_back"`
	Rollbacks  uint64 `json:"rollbacks"`
	// CommitRatio is committed/(committed+rolled back) over the whole
	// run so far; 1.0 means no speculation was wasted.
	CommitRatio float64 `json:"commit_ratio"`
	// PoolHitRate is the event-pool hit fraction so far (1.0 = the
	// steady-state allocation-free regime).
	PoolHitRate float64 `json:"pool_hit_rate"`
	// Uncommitted is the number of processed-but-uncommitted events
	// (the speculation window); QueueDepth the total events sitting in
	// pending and inbox queues across all threads.
	Uncommitted int `json:"uncommitted"`
	QueueDepth  int `json:"queue_depth"`
	// ActiveThreads is how many worker threads the scheduler currently
	// keeps awake (demand-driven scheduling deactivates starved ones).
	ActiveThreads int `json:"active_threads"`
}

// Series is a bounded, goroutine-safe ring of SeriesPoints. The zero
// limit keeps the most recent DefaultSeriesLimit points; a nil Series
// ignores appends and reads empty, so producers never nil-check.
type Series struct {
	mu    sync.Mutex
	pts   []SeriesPoint
	start int // ring head when full
	limit int
	total int
}

// DefaultSeriesLimit bounds a Series constructed with limit <= 0. At
// one point per GVT round it covers any plausible run's recent
// history in a few hundred KB.
const DefaultSeriesLimit = 4096

// NewSeries returns a Series retaining the last limit points
// (DefaultSeriesLimit if limit <= 0).
func NewSeries(limit int) *Series {
	if limit <= 0 {
		limit = DefaultSeriesLimit
	}
	return &Series{limit: limit}
}

// Append records one point, evicting the oldest when full.
func (s *Series) Append(pt SeriesPoint) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if len(s.pts) < s.limit {
		s.pts = append(s.pts, pt)
		return
	}
	s.pts[s.start] = pt
	s.start = (s.start + 1) % s.limit
}

// Reset discards all points (a serve-layer retry reuses the buffer).
func (s *Series) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.pts, s.start, s.total = s.pts[:0], 0, 0
	s.mu.Unlock()
}

// Len returns the number of retained points.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pts)
}

// Total returns the number of points ever appended, including evicted
// ones.
func (s *Series) Total() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Points returns the retained points oldest-first, as a copy.
func (s *Series) Points() []SeriesPoint {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pts) == 0 {
		return nil
	}
	out := make([]SeriesPoint, 0, len(s.pts))
	out = append(out, s.pts[s.start:]...)
	out = append(out, s.pts[:s.start]...)
	return out
}

// Last returns the most recent point, if any.
func (s *Series) Last() (SeriesPoint, bool) {
	if s == nil {
		return SeriesPoint{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pts) == 0 {
		return SeriesPoint{}, false
	}
	i := s.start - 1
	if i < 0 {
		i = len(s.pts) - 1
	}
	return s.pts[i], true
}

// seriesCSVHeader names the WriteCSV columns. ThreadLVTs flatten into
// a single space-separated column so the row count stays fixed across
// thread counts.
var seriesCSVHeader = []string{
	"round", "gvt", "wall_seconds", "advance_vt", "advance_rate",
	"mean_lvt", "min_lvt", "max_lvt", "horizon_width", "horizon_roughness",
	"processed", "committed", "rolled_back", "rollbacks",
	"commit_ratio", "pool_hit_rate", "uncommitted", "queue_depth",
	"active_threads", "thread_lvts",
}

// WriteCSV dumps the retained points as CSV, header first.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, strings.Join(seriesCSVHeader, ",")+"\n"); err != nil {
		return err
	}
	for _, pt := range s.Points() {
		lvts := make([]string, len(pt.ThreadLVTs))
		for i, v := range pt.ThreadLVTs {
			lvts[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		_, err := fmt.Fprintf(w, "%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%d,%d,%d,%d,%g,%g,%d,%d,%d,%s\n",
			pt.Round, pt.GVT, pt.WallSeconds, pt.AdvanceVT, pt.AdvanceRate,
			pt.MeanLVT, pt.MinLVT, pt.MaxLVT, pt.HorizonWidth, pt.HorizonRoughness,
			pt.Processed, pt.Committed, pt.RolledBack, pt.Rollbacks,
			pt.CommitRatio, pt.PoolHitRate, pt.Uncommitted, pt.QueueDepth,
			pt.ActiveThreads, strings.Join(lvts, " "))
		if err != nil {
			return err
		}
	}
	return nil
}
