package telemetry

import (
	"strings"
	"testing"
)

// TestOpenMetricsGolden pins the exposition byte-for-byte for a small
// registry exercising all three kinds, shard merging, and the
// unset-gauge skip. Scrapers and the ggtop parser both depend on this
// exact shape.
func TestOpenMetricsGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("tw.rollbacks").Add(2)
	r.Shard(0).Counter("tw.rollbacks").Add(3)
	r.Shard(1).Counter("serve.jobs_completed").Inc()
	r.Shard(0).Gauge("serve.jobs_in_flight").Set(2)
	r.Shard(3).Gauge("serve.jobs_in_flight").Set(1)
	_ = r.Gauge("tw.uncommitted_peak") // never set: must be skipped
	h := r.Shard(2).Histogram("tw.rollback_depth")
	h.Observe(0.5) // bucket 0: [0,1)
	h.Observe(3)   // bucket 2: [2,4)
	h.Observe(3.5)

	var b strings.Builder
	if err := WriteOpenMetrics(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE ggpdes_serve_jobs_completed counter
ggpdes_serve_jobs_completed_total 1
# TYPE ggpdes_tw_rollbacks counter
ggpdes_tw_rollbacks_total 5
# TYPE ggpdes_serve_jobs_in_flight gauge
ggpdes_serve_jobs_in_flight 2
# TYPE ggpdes_tw_rollback_depth histogram
ggpdes_tw_rollback_depth_bucket{le="1"} 1
ggpdes_tw_rollback_depth_bucket{le="2"} 1
ggpdes_tw_rollback_depth_bucket{le="4"} 3
ggpdes_tw_rollback_depth_bucket{le="+Inf"} 3
ggpdes_tw_rollback_depth_sum 7
ggpdes_tw_rollback_depth_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestOpenMetricsEmptyState(t *testing.T) {
	var b strings.Builder
	if err := WriteOpenMetrics(&b, MetricsState{}); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty state produced output: %q", b.String())
	}
}
