package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d", c.Value())
	}
	var g Gauge
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.Max(2)
	if g.Value() != 3.5 {
		t.Fatal("Max lowered the gauge")
	}
	g.Max(7)
	if g.Value() != 7 {
		t.Fatal("Max did not raise the gauge")
	}
}

func TestGaugeMaxFromZero(t *testing.T) {
	var g Gauge
	g.Max(-5)
	if g.Value() != -5 {
		t.Fatalf("first Max should set unconditionally, got %v", g.Value())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Summary()
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile not zero")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Observe(42)
	s := h.Summary()
	if s.Count != 1 || s.Mean != 42 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("summary = %+v", s)
	}
	// All quantiles clamp to the single observation.
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if v := h.Quantile(q); v != 42 {
			t.Fatalf("q%.2f = %v, want 42", q, v)
		}
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	p50, p95, p99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not ordered: %v %v %v", p50, p95, p99)
	}
	// Log buckets are exact to a factor of two.
	if p50 < 250 || p50 > 1000 {
		t.Fatalf("p50 = %v, out of range for uniform 1..1000", p50)
	}
	if p99 < 500 || p99 > 1000 {
		t.Fatalf("p99 = %v", p99)
	}
	if m := h.Mean(); math.Abs(m-500.5) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramNegativeAndNaNClamped(t *testing.T) {
	var h Histogram
	h.Observe(-100)
	h.Observe(math.NaN())
	if h.Count() != 2 || h.Sum() != 0 || h.Summary().Max != 0 {
		t.Fatalf("clamping failed: %+v", h.Summary())
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[float64]int{0: 0, 0.5: 0, 1: 1, 1.9: 1, 2: 2, 3: 2, 4: 3, 1 << 20: 21}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Errorf("bucketOf(%v) = %d, want %d", v, got, want)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c1.Inc()
	if r.Counter("a") != c1 {
		t.Fatal("counter not shared by name")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram not shared by name")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge not shared by name")
	}
	if r.Counters()["a"] != 1 {
		t.Fatalf("snapshot = %v", r.Counters())
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	if r.Counters() != nil || r.Gauges() != nil || r.Histograms() != nil {
		t.Fatal("nil registry snapshots should be nil")
	}
	if err := r.WriteText(nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("tw.anti_messages").Add(3)
	r.Gauge("tw.uncommitted_peak").Set(12)
	r.Histogram("tw.rollback_depth").Observe(4)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"counter", "tw.anti_messages", "gauge", "histogram", "p95"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump %q missing %q", out, want)
		}
	}
}

// The serving layer shares one registry across worker goroutines, so
// every metric type must tolerate concurrent recording and snapshots.
func TestConcurrentRegistryAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Max(float64(j))
				r.Histogram("h").Observe(float64(j))
				if j%100 == 0 {
					r.Counters()
					r.Histograms()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 999 {
		t.Fatalf("gauge = %v, want 999", got)
	}
}
