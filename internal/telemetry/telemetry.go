// Package telemetry is the run-time metrics layer: counters, gauges
// and log-bucketed histograms collected in a Registry. Every subsystem
// (the Time Warp engine, the schedulers, the simulated machine)
// registers its metrics here; the public API surfaces percentile
// summaries through Results and the commands dump or export them.
//
// Recording is allocation-free after registration and goroutine-safe:
// counters are atomic and gauges/histograms take a short uncontended
// mutex, so a registry may be shared across concurrent simulations
// (the serving layer's job metrics) as well as used from the
// serialized simulated machine. Hot producers take per-thread Shard
// views (see shard.go) whose cells are cache-line padded, so parallel
// recording never contends on a shared line; every read-side accessor
// merges the shards back into the totals an unsharded registry would
// report. All accessors are nil-receiver safe: a producer constructed
// without a registry still gets working (but unreported) metric
// handles, so instrumentation sites never need nil checks.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-value-wins instantaneous measurement.
type Gauge struct {
	mu  sync.Mutex
	v   float64
	set bool
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v, g.set = v, true
	g.mu.Unlock()
}

// Max records v only if it exceeds the current value (high-water mark).
func (g *Gauge) Max(v float64) {
	g.mu.Lock()
	if !g.set || v > g.v {
		g.v, g.set = v, true
	}
	g.mu.Unlock()
}

// Value returns the last recorded value (0 before any Set).
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// histBuckets is the bucket count: bucket k holds values in
// [2^(k-1), 2^k) for k >= 1 and bucket 0 holds values below 1, covering
// the full uint64 range with one comparison per observation.
const histBuckets = 65

// Histogram is a log2-bucketed distribution of non-negative values
// (cycle counts, event counts). Percentiles interpolate linearly within
// the hit bucket, which is exact to a factor of two — ample for the
// order-of-magnitude questions run telemetry answers.
type Histogram struct {
	mu       sync.Mutex
	counts   [histBuckets]uint64
	count    uint64
	sum      float64
	min, max float64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	u := uint64(v)
	if u == 0 {
		return 0
	}
	return bits.Len64(u)
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketOf(v)]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.mean()
}

func (h *Histogram) mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the q-th quantile (q in [0,1]) by linear
// interpolation within the containing log bucket, clamped to the
// observed min/max. It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantile(q)
}

func (h *Histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	var cum float64
	for b, n := range h.counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= target {
			lo, hi := bucketBounds(b)
			frac := (target - cum) / float64(n)
			v := lo + frac*(hi-lo)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// bucketBounds returns the value range [lo, hi) of bucket b.
func bucketBounds(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 1
	}
	return math.Ldexp(1, b-1), math.Ldexp(1, b)
}

// Summary is a compact digest of a histogram.
type Summary struct {
	// Count is the number of observations; Sum their total.
	Count uint64
	Sum   float64
	// Mean, Min and Max are exact; P50/P95/P99 are log-bucket
	// interpolations.
	Mean, Min, Max float64
	P50, P95, P99  float64
}

// Summary digests the histogram.
func (h *Histogram) Summary() Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Summary{
		Count: h.count,
		Sum:   h.sum,
		Mean:  h.mean(),
		Min:   h.min,
		Max:   h.max,
		P50:   h.quantile(0.50),
		P95:   h.quantile(0.95),
		P99:   h.quantile(0.99),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Registry is a named collection of metrics. Names are flat,
// dot-separated strings ("tw.rollback_depth"). Accessors get-or-create,
// so independent subsystems can share a metric by name.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	// Per-thread shard cells (see shard.go). Indexed by tid; nil
	// entries are tids that never touched the metric. shardsOff
	// routes Shard handles at the shared base cells instead (the
	// contention benchmark's A/B arm).
	counterCells map[string][]*counterCell
	gaugeCells   map[string][]*gaugeCell
	histCells    map[string][]*histCell
	shardsOff    bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     map[string]*Counter{},
		gauges:       map[string]*Gauge{},
		histograms:   map[string]*Histogram{},
		counterCells: map[string][]*counterCell{},
		gaugeCells:   map[string][]*gaugeCell{},
		histCells:    map[string][]*histCell{},
	}
}

// Counter returns the named counter, creating it on first use. On a nil
// registry it returns a fresh unregistered counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counterLocked(name)
}

func (r *Registry) counterLocked(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. On a nil
// registry it returns a fresh unregistered gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gaugeLocked(name)
}

func (r *Registry) gaugeLocked(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. On a
// nil registry it returns a fresh unregistered histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.histogramLocked(name)
}

func (r *Registry) histogramLocked(name string) *Histogram {
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Counters returns a name -> value snapshot of all counters, shard
// cells merged in.
func (r *Registry) Counters() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.counterValuesLocked()
}

// Gauges returns a name -> value snapshot of the gauges that have been
// set (shard cells merged by maximum). Gauges that were registered but
// never recorded are omitted rather than reported as a misleading 0;
// callers that need the set flag itself use Snapshot.
func (r *Registry) Gauges() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	states := r.gaugeStatesLocked()
	out := make(map[string]float64, len(states))
	for name, st := range states {
		if st.Set {
			out[name] = st.Value
		}
	}
	return out
}

// Histograms returns a name -> summary snapshot of all histograms,
// shard cells merged bucket-wise.
func (r *Registry) Histograms() map[string]Summary {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	states := r.histStatesLocked()
	out := make(map[string]Summary, len(states))
	for name, st := range states {
		out[name] = summaryFromState(st)
	}
	return out
}

// GaugeState is the raw serializable state of a Gauge.
type GaugeState struct {
	Value float64 `json:"value"`
	Set   bool    `json:"set"`
}

// HistogramState is the raw serializable state of a Histogram. Counts
// holds every log2 bucket, including zeros, so the import side never
// guesses at the bucket layout.
type HistogramState struct {
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    float64  `json:"sum"`
	Min    float64  `json:"min"`
	Max    float64  `json:"max"`
}

// MetricsState is a lossless export of a registry: unlike the Summary
// snapshots it preserves raw bucket counts, so a registry restored from
// it continues observing as if it had recorded every original value.
// It is the telemetry half of a run checkpoint.
type MetricsState struct {
	Counters   map[string]uint64         `json:"counters,omitempty"`
	Gauges     map[string]GaugeState     `json:"gauges,omitempty"`
	Histograms map[string]HistogramState `json:"histograms,omitempty"`
}

// Export captures the registry's full raw state with shard cells
// merged in: counters summed, gauges merged by maximum set value,
// histogram buckets added. The merge is lossless for counters and
// histograms — importing the export into a fresh registry reproduces
// the merged totals exactly.
func (r *Registry) Export() MetricsState {
	if r == nil {
		return MetricsState{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return MetricsState{
		Counters:   r.counterValuesLocked(),
		Gauges:     r.gaugeStatesLocked(),
		Histograms: r.histStatesLocked(),
	}
}

// Snapshot is the merged-on-read view of the registry: every base and
// shard cell folded into one MetricsState. It is Export under the
// name the observability plane uses — the exposition endpoint and the
// stats API render from a Snapshot.
func (r *Registry) Snapshot() MetricsState { return r.Export() }

// Import merges an exported state into the registry: counters add,
// gauges adopt the imported value (if it was ever set), histograms
// merge bucket-wise. Importing into a fresh registry reproduces the
// exported one exactly; metrics recorded afterwards accumulate on top,
// which is how a resumed run continues its predecessor's telemetry.
func (r *Registry) Import(st MetricsState) {
	if r == nil {
		return
	}
	for name, v := range st.Counters {
		r.Counter(name).Add(v)
	}
	for name, gs := range st.Gauges {
		if gs.Set {
			r.Gauge(name).Set(gs.Value)
		}
	}
	for name, hs := range st.Histograms {
		h := r.Histogram(name)
		h.mu.Lock()
		for i, n := range hs.Counts {
			if i < histBuckets {
				h.counts[i] += n
			}
		}
		if hs.Count > 0 {
			if h.count == 0 || hs.Min < h.min {
				h.min = hs.Min
			}
			if hs.Max > h.max {
				h.max = hs.Max
			}
			h.count += hs.Count
			h.sum += hs.Sum
		}
		h.mu.Unlock()
	}
}

// WriteText dumps every metric in name order, one per line, shard
// cells merged in. Never-set gauges are skipped, like everywhere else.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	var lines []string
	for name, v := range r.counterValuesLocked() {
		lines = append(lines, fmt.Sprintf("counter   %-32s %d", name, v))
	}
	for name, st := range r.gaugeStatesLocked() {
		if st.Set {
			lines = append(lines, fmt.Sprintf("gauge     %-32s %g", name, st.Value))
		}
	}
	for name, st := range r.histStatesLocked() {
		lines = append(lines, fmt.Sprintf("histogram %-32s %s", name, summaryFromState(st)))
	}
	r.mu.RUnlock()
	sort.Strings(lines)
	_, err := io.WriteString(w, strings.Join(lines, "\n")+"\n")
	return err
}
