package telemetry

import (
	"strings"
	"testing"
)

func TestSeriesRingEviction(t *testing.T) {
	s := NewSeries(3)
	for i := 1; i <= 5; i++ {
		s.Append(SeriesPoint{Round: i})
	}
	if s.Len() != 3 || s.Total() != 5 {
		t.Fatalf("len=%d total=%d, want 3/5", s.Len(), s.Total())
	}
	pts := s.Points()
	if pts[0].Round != 3 || pts[2].Round != 5 {
		t.Fatalf("points = %v, want rounds 3..5 oldest-first", pts)
	}
	last, ok := s.Last()
	if !ok || last.Round != 5 {
		t.Fatalf("Last = %+v/%v, want round 5", last, ok)
	}
}

func TestSeriesResetAndNil(t *testing.T) {
	s := NewSeries(0)
	s.Append(SeriesPoint{Round: 1})
	s.Reset()
	if s.Len() != 0 || s.Total() != 0 {
		t.Fatal("Reset did not clear the ring")
	}
	var nilS *Series
	nilS.Append(SeriesPoint{})
	nilS.Reset()
	if nilS.Len() != 0 || nilS.Total() != 0 || nilS.Points() != nil {
		t.Fatal("nil Series is not inert")
	}
	if _, ok := nilS.Last(); ok {
		t.Fatal("nil Series reports a last point")
	}
}

func TestSeriesWriteCSV(t *testing.T) {
	s := NewSeries(8)
	s.Append(SeriesPoint{
		Round: 1, GVT: 2.5, ThreadLVTs: []float64{2.5, 3},
		HorizonWidth: 0.5, Processed: 10, Committed: 8, ActiveThreads: 2,
	})
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row", len(lines))
	}
	if !strings.HasPrefix(lines[0], "round,gvt,") || !strings.HasSuffix(lines[0], ",thread_lvts") {
		t.Fatalf("unexpected header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,2.5,") || !strings.HasSuffix(lines[1], ",2.5 3") {
		t.Fatalf("unexpected row %q", lines[1])
	}
	if got, want := strings.Count(lines[0], ","), strings.Count(lines[1], ","); got != want {
		t.Fatalf("header has %d columns, row has %d", got+1, want+1)
	}
}
