package telemetry

// Per-thread metric sharding. A Registry hands out Shard views keyed
// by thread id; each shard's Counter/Gauge/Histogram resolves to a
// private, cache-line-padded cell for that (name, tid) pair, so worker
// threads recording concurrently never bounce a cache line between
// cores. Reads (Counters, Gauges, Histograms, Export/Snapshot,
// WriteText, the OpenMetrics exposition) merge the base cells and all
// shard cells, so consumers see exactly the totals an unsharded
// registry would have produced:
//
//   - counters add across shards;
//   - gauges merge by taking the maximum value among set shards
//     (gauges in this codebase are high-water marks);
//   - histograms merge bucket-wise, which is exact — the merged
//     Summary is identical to one histogram having observed every
//     value.
//
// Shard handles keep the ordinary atomic/mutex metric operations: a
// registry may still be shared across concurrently running jobs (the
// serving layer), where two runs can legitimately hand the same tid to
// different goroutines. The win of sharding is eliminating cross-
// thread cache-line sharing, not eliminating atomics.

// cellLine is the padding target: two 64-byte cache lines, covering
// the adjacent-line prefetcher on common x86 parts.
const cellLine = 128

// counterCell is a Counter padded out to its own cache line(s).
type counterCell struct {
	Counter
	_ [cellLine - 8]byte
}

// gaugeCell is a Gauge padded out to its own cache line(s). The Gauge
// struct is 24 bytes (8-byte mutex, 8-byte float, flag + padding).
type gaugeCell struct {
	Gauge
	_ [cellLine - 24]byte
}

// histCell is a per-shard Histogram. The struct already spans many
// cache lines (65 buckets), so only the leading hot fields get a pad.
type histCell struct {
	Histogram
}

// Shard is a per-thread view of a Registry. The zero Shard (and any
// Shard from a nil Registry) hands out fresh unregistered handles,
// preserving the package's nil-receiver-safe contract.
type Shard struct {
	r   *Registry
	tid int
}

// Shard returns the per-thread view for tid. Negative tids are
// clamped to 0. Safe on a nil registry.
func (r *Registry) Shard(tid int) Shard {
	if tid < 0 {
		tid = 0
	}
	return Shard{r: r, tid: tid}
}

// SetSharding toggles whether Shard handles resolve to private
// per-thread cells (the default) or to the shared base cells — the
// pre-sharding behaviour, kept as the A/B arm of the contention
// benchmark. Call it before any handles are acquired; handles already
// handed out keep pointing at whichever cell they resolved to.
func (r *Registry) SetSharding(enabled bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.shardsOff = !enabled
	r.mu.Unlock()
}

// Counter returns the shard's private counter for name, creating it on
// first use.
func (s Shard) Counter(name string) *Counter {
	if s.r == nil {
		return &Counter{}
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	if s.r.shardsOff {
		return s.r.counterLocked(name)
	}
	cells := growCells(s.r.counterCells, name, s.tid)
	if cells[s.tid] == nil {
		cells[s.tid] = &counterCell{}
	}
	return &cells[s.tid].Counter
}

// Gauge returns the shard's private gauge for name, creating it on
// first use.
func (s Shard) Gauge(name string) *Gauge {
	if s.r == nil {
		return &Gauge{}
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	if s.r.shardsOff {
		return s.r.gaugeLocked(name)
	}
	cells := growCells(s.r.gaugeCells, name, s.tid)
	if cells[s.tid] == nil {
		cells[s.tid] = &gaugeCell{}
	}
	return &cells[s.tid].Gauge
}

// Histogram returns the shard's private histogram for name, creating
// it on first use.
func (s Shard) Histogram(name string) *Histogram {
	if s.r == nil {
		return &Histogram{}
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	if s.r.shardsOff {
		return s.r.histogramLocked(name)
	}
	cells := growCells(s.r.histCells, name, s.tid)
	if cells[s.tid] == nil {
		cells[s.tid] = &histCell{}
	}
	return &cells[s.tid].Histogram
}

// growCells returns m[name] grown (with nil fill) to cover index tid.
// Cells are individually heap-allocated so growing the spine never
// moves a cell a handle already points at.
func growCells[C any](m map[string][]*C, name string, tid int) []*C {
	cells := m[name]
	for len(cells) <= tid {
		cells = append(cells, nil)
	}
	m[name] = cells
	return cells
}

// Merged reads. All helpers require r.mu held (read lock suffices:
// the maps and spines are only mutated under the write lock, and the
// cells themselves are internally synchronized).

// counterValuesLocked returns the merged name -> value view: base
// counters plus every shard cell.
func (r *Registry) counterValuesLocked() map[string]uint64 {
	out := make(map[string]uint64, len(r.counters)+len(r.counterCells))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, cells := range r.counterCells {
		v := out[name]
		for _, cell := range cells {
			if cell != nil {
				v += cell.Value()
			}
		}
		out[name] = v
	}
	return out
}

// gaugeStatesLocked returns the merged name -> GaugeState view. A
// merged gauge is set iff any contributing cell is set; its value is
// the maximum among set cells (high-water semantics).
func (r *Registry) gaugeStatesLocked() map[string]GaugeState {
	out := make(map[string]GaugeState, len(r.gauges)+len(r.gaugeCells))
	merge := func(name string, g *Gauge) {
		g.mu.Lock()
		v, set := g.v, g.set
		g.mu.Unlock()
		st := out[name]
		if set && (!st.Set || v > st.Value) {
			st.Value, st.Set = v, true
		}
		out[name] = st
	}
	for name, g := range r.gauges {
		merge(name, g)
	}
	for name, cells := range r.gaugeCells {
		if _, ok := out[name]; !ok {
			out[name] = GaugeState{}
		}
		for _, cell := range cells {
			if cell != nil {
				merge(name, &cell.Gauge)
			}
		}
	}
	return out
}

// histStatesLocked returns the merged name -> HistogramState view,
// bucket-wise exact across base and shard cells.
func (r *Registry) histStatesLocked() map[string]HistogramState {
	out := make(map[string]HistogramState, len(r.histograms)+len(r.histCells))
	merge := func(name string, h *Histogram) {
		st, ok := out[name]
		if !ok {
			st = HistogramState{Counts: make([]uint64, histBuckets)}
		}
		h.mu.Lock()
		for i, n := range h.counts {
			st.Counts[i] += n
		}
		if h.count > 0 {
			if st.Count == 0 || h.min < st.Min {
				st.Min = h.min
			}
			if h.max > st.Max {
				st.Max = h.max
			}
			st.Count += h.count
			st.Sum += h.sum
		}
		h.mu.Unlock()
		out[name] = st
	}
	for name, h := range r.histograms {
		merge(name, h)
	}
	for name, cells := range r.histCells {
		if _, ok := out[name]; !ok {
			out[name] = HistogramState{Counts: make([]uint64, histBuckets)}
		}
		for _, cell := range cells {
			if cell != nil {
				merge(name, &cell.Histogram)
			}
		}
	}
	return out
}

// summaryFromState digests a raw histogram state exactly as
// Histogram.Summary would for a histogram holding that state.
func summaryFromState(st HistogramState) Summary {
	var h Histogram
	copy(h.counts[:], st.Counts)
	h.count, h.sum, h.min, h.max = st.Count, st.Sum, st.Min, st.Max
	return Summary{
		Count: h.count,
		Sum:   h.sum,
		Mean:  h.mean(),
		Min:   h.min,
		Max:   h.max,
		P50:   h.quantile(0.50),
		P95:   h.quantile(0.95),
		P99:   h.quantile(0.99),
	}
}
