package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus/OpenMetrics text exposition. WriteOpenMetrics renders a
// merged MetricsState in the text format Prometheus scrapes
// (version 0.0.4): dotted registry names become underscore-separated
// and are prefixed "ggpdes_", counters gain the "_total" suffix, and
// histograms expose their log2 buckets as cumulative
// `_bucket{le="..."}` lines with power-of-two upper bounds plus
// "+Inf", followed by `_sum` and `_count`. Output is sorted by metric
// name so the exposition is deterministic (golden-tested). Gauges
// that were never set are skipped entirely rather than exposed as a
// misleading 0.

// expoPrefix namespaces every exposed metric.
const expoPrefix = "ggpdes_"

// expoName maps a registry name ("tw.rollback_depth") to an exposition
// name ("ggpdes_tw_rollback_depth"). Registry names are enforced (by
// ggvet's telemetryname pass) to be lowercase dotted identifiers, so
// replacing dots is a complete sanitization.
func expoName(name string) string {
	return expoPrefix + strings.ReplaceAll(name, ".", "_")
}

// expoFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func expoFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteOpenMetrics renders st in the Prometheus text exposition
// format. The caller supplies a merged snapshot (Registry.Snapshot).
func WriteOpenMetrics(w io.Writer, st MetricsState) error {
	var b strings.Builder

	names := make([]string, 0, len(st.Counters))
	for name := range st.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		// OpenMetrics convention: TYPE declares the family, the sample
		// carries the "_total" suffix.
		n := expoName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s_total %d\n", n, n, st.Counters[name])
	}

	names = names[:0]
	for name, gs := range st.Gauges {
		if gs.Set {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		n := expoName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", n, n, expoFloat(st.Gauges[name].Value))
	}

	names = names[:0]
	for name := range st.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		hs := st.Histograms[name]
		n := expoName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		// Cumulative buckets up to the highest populated one; the
		// upper bound of log2 bucket b is 2^b (bucket 0 is [0,1)).
		top := -1
		for i, c := range hs.Counts {
			if c > 0 {
				top = i
			}
		}
		var cum uint64
		for i := 0; i <= top; i++ {
			cum += hs.Counts[i]
			_, hi := bucketBounds(i)
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", n, expoFloat(hi), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, hs.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", n, expoFloat(hs.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", n, hs.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}
