package telemetry

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestShardCountersMergeBySum(t *testing.T) {
	r := NewRegistry()
	r.Counter("tw.rollbacks").Add(5) // base cell
	for tid := 0; tid < 4; tid++ {
		r.Shard(tid).Counter("tw.rollbacks").Add(uint64(tid + 1))
	}
	if got := r.Counters()["tw.rollbacks"]; got != 5+1+2+3+4 {
		t.Fatalf("merged counter = %d, want 15", got)
	}
}

func TestShardGaugesMergeByMaxAmongSet(t *testing.T) {
	r := NewRegistry()
	r.Shard(0).Gauge("tw.uncommitted_peak").Max(3)
	r.Shard(2).Gauge("tw.uncommitted_peak").Max(9)
	// tid 1 registered but never set: must not drag the max to 0.
	_ = r.Shard(1).Gauge("tw.uncommitted_peak")
	if got := r.Gauges()["tw.uncommitted_peak"]; got != 9 {
		t.Fatalf("merged gauge = %g, want 9", got)
	}
	st := r.Snapshot().Gauges["tw.uncommitted_peak"]
	if !st.Set || st.Value != 9 {
		t.Fatalf("snapshot gauge = %+v, want {9 true}", st)
	}
}

func TestUnsetGaugeOmitted(t *testing.T) {
	r := NewRegistry()
	_ = r.Gauge("tw.uncommitted_peak")
	_ = r.Shard(3).Gauge("serve.jobs_in_flight")
	if g := r.Gauges(); len(g) != 0 {
		t.Fatalf("Gauges() reports unset gauges: %v", g)
	}
	for name, st := range r.Snapshot().Gauges {
		if st.Set {
			t.Fatalf("snapshot marks unset gauge %q as set", name)
		}
	}
}

// TestShardHistogramMergeExact proves the bucket-wise merge is exact:
// a sharded registry and an unsharded one fed the same observations
// produce identical summaries, which is why determinism-smoke output
// is unaffected by sharding.
func TestShardHistogramMergeExact(t *testing.T) {
	sharded, flat := NewRegistry(), NewRegistry()
	vals := []float64{0, 1, 3, 7, 7, 120, 4096, 1e9}
	for i, v := range vals {
		sharded.Shard(i % 3).Histogram("tw.rollback_depth").Observe(v)
		flat.Histogram("tw.rollback_depth").Observe(v)
	}
	got := sharded.Histograms()["tw.rollback_depth"]
	want := flat.Histograms()["tw.rollback_depth"]
	if got != want {
		t.Fatalf("merged summary diverges from unsharded:\n got %+v\nwant %+v", got, want)
	}
}

func TestShardingDisabledRoutesToBaseCells(t *testing.T) {
	r := NewRegistry()
	r.SetSharding(false)
	a := r.Shard(0).Counter("tw.rollbacks")
	b := r.Shard(7).Counter("tw.rollbacks")
	if a != b || a != r.Counter("tw.rollbacks") {
		t.Fatal("with sharding off, all shard handles must alias the base cell")
	}
}

func TestNilAndZeroShardSafe(t *testing.T) {
	var r *Registry
	s := r.Shard(3)
	s.Counter("x.y").Inc()
	s.Gauge("x.y").Set(1)
	s.Histogram("x.y").Observe(1)
	var zero Shard
	zero.Counter("x.y").Inc()
	if got := r.Shard(-4).tid; got != 0 {
		t.Fatalf("negative tid clamped to %d, want 0", got)
	}
}

func TestShardHandleStableAcrossSpineGrowth(t *testing.T) {
	r := NewRegistry()
	c0 := r.Shard(0).Counter("tw.rollbacks")
	c0.Inc()
	// Growing the spine far past tid 0 must not move tid 0's cell.
	_ = r.Shard(63).Counter("tw.rollbacks")
	c0.Inc()
	if got := r.Counters()["tw.rollbacks"]; got != 2 {
		t.Fatalf("counter lost an increment across spine growth: %d", got)
	}
	if c0 != r.Shard(0).Counter("tw.rollbacks") {
		t.Fatal("re-acquired handle differs from the original")
	}
}

func TestConcurrentShardsAndScrapes(t *testing.T) {
	r := NewRegistry()
	const threads, iters = 8, 2000
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // scraper racing the writers
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
				runtime.Gosched()
			}
		}
	}()
	var writers sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		writers.Add(1)
		go func(tid int) {
			defer writers.Done()
			sh := r.Shard(tid)
			for i := 0; i < iters; i++ {
				sh.Counter("tw.rollbacks").Inc()
				sh.Gauge("tw.uncommitted_peak").Max(float64(i))
				sh.Histogram("tw.rollback_depth").Observe(float64(i % 64))
			}
		}(tid)
	}
	writers.Wait()
	close(stop)
	scraper.Wait()
	if got := r.Counters()["tw.rollbacks"]; got != uint64(threads*iters) {
		t.Fatalf("merged counter = %d, want %d", got, threads*iters)
	}
	if got := r.Snapshot().Histograms["tw.rollback_depth"].Count; got != uint64(threads*iters) {
		t.Fatalf("merged histogram count = %d, want %d", got, threads*iters)
	}
}

// benchmarkRegistry drives every parallel worker through its own (or
// the shared) cell set — the contention A/B behind BENCH_PR6.json's
// telemetry_sharded/telemetry_shared entries.
func benchmarkRegistry(b *testing.B, sharded bool) {
	r := NewRegistry()
	r.SetSharding(sharded)
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		sh := r.Shard(int(next.Add(1) - 1))
		c := sh.Counter("tw.rollbacks")
		h := sh.Histogram("tw.rollback_depth")
		i := 0
		for pb.Next() {
			c.Inc()
			if i%16 == 0 {
				h.Observe(float64(i & 63))
			}
			i++
		}
	})
}

func BenchmarkRegistrySharded(b *testing.B) { benchmarkRegistry(b, true) }
func BenchmarkRegistryShared(b *testing.B)  { benchmarkRegistry(b, false) }
