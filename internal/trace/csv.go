package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// kindFromString is the inverse of Kind.String.
func kindFromString(s string) (Kind, error) {
	switch s {
	case "gvt":
		return KindGVT, nil
	case "round":
		return KindRound, nil
	case "rollback":
		return KindRollback, nil
	case "deactivate":
		return KindDeactivate, nil
	case "activate":
		return KindActivate, nil
	case "repin":
		return KindRepin, nil
	case "commit":
		return KindCommit, nil
	case "antimessage":
		return KindAntiMessage, nil
	case "migration":
		return KindMigration, nil
	case "preempt":
		return KindPreempt, nil
	default:
		return 0, fmt.Errorf("trace: unknown record kind %q", s)
	}
}

// ReadCSV parses records previously written with WriteCSV into a new
// Recorder, enabling offline analysis (cmd/ggtrace).
func ReadCSV(r io.Reader) (*Recorder, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	rec := New(0)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 {
			if text != "kind,wall_cycles,thread,value,aux" {
				return nil, fmt.Errorf("trace: line 1: unexpected header %q", text)
			}
			continue
		}
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 5 fields, got %d", line, len(fields))
		}
		kind, err := kindFromString(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		wall, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: wall_cycles: %w", line, err)
		}
		thread, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: thread: %w", line, err)
		}
		value, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: value: %w", line, err)
		}
		aux, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: aux: %w", line, err)
		}
		rec.records = append(rec.records, Record{
			Kind: kind, WallCycles: wall, Thread: thread, Value: value, Aux: aux,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading csv: %w", err)
	}
	return rec, nil
}

// MaxThread returns the largest thread id referenced (at least 0), for
// sizing offline analyses.
func (r *Recorder) MaxThread() int {
	max := 0
	for _, rec := range r.records {
		if rec.Thread > max {
			max = rec.Thread
		}
	}
	return max
}

// EndCycles returns the latest wall-clock stamp in the trace.
func (r *Recorder) EndCycles() uint64 {
	var end uint64
	for _, rec := range r.records {
		if rec.WallCycles > end {
			end = rec.WallCycles
		}
	}
	return end
}
