package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the parser and
// that everything it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("kind,wall_cycles,thread,value,aux\ngvt,10,-1,1.5,0\n")
	f.Add("kind,wall_cycles,thread,value,aux\nrollback,20,3,0,7\ncommit,30,0,5,100\n")
	f.Add("kind,wall_cycles,thread,value,aux\nantimessage,1,2,3.25,4\nmigration,2,0,0,1\npreempt,3,1,0,0\n")
	f.Add("kind,wall_cycles,thread,value,aux\n\n\n")
	f.Add("not,a,header\n")
	f.Add("kind,wall_cycles,thread,value,aux\ngvt,NaN,0,Inf,9999999999999999999999\n")
	f.Fuzz(func(t *testing.T, in string) {
		rec, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := rec.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV after accept: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-read rejected own output: %v\n%s", err, buf.String())
		}
		if len(back.Records()) != len(rec.Records()) {
			t.Fatalf("round trip lost records: %d != %d", len(back.Records()), len(rec.Records()))
		}
		// Derived views must not panic on accepted input.
		_ = rec.Summary(back.MaxThread()+1, back.EndCycles())
		_, _ = rec.GVTSeries()
		_ = rec.InactiveIntervals(back.MaxThread()+1, back.EndCycles())
	})
}
