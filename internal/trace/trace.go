// Package trace records simulation-run events — GVT progression,
// rollbacks, demand-driven scheduling transitions, affinity repins —
// for post-run analysis, mirroring the instrumentation layers PDES
// engines like ROSS ship with. Recording is allocation-light (one flat
// record slice) and safe on the simulated machine because execution is
// serialized.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind tags a trace record.
type Kind uint8

// Record kinds.
const (
	// KindGVT: a GVT publication. Value = new GVT.
	KindGVT Kind = iota
	// KindRound: a completed GVT round. Aux = participants.
	KindRound
	// KindRollback: a rollback episode. Aux = events undone.
	KindRollback
	// KindDeactivate: thread scheduled out.
	KindDeactivate
	// KindActivate: thread scheduled back in.
	KindActivate
	// KindRepin: dynamic affinity pinned the thread. Aux = core.
	KindRepin
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindGVT:
		return "gvt"
	case KindRound:
		return "round"
	case KindRollback:
		return "rollback"
	case KindDeactivate:
		return "deactivate"
	case KindActivate:
		return "activate"
	case KindRepin:
		return "repin"
	default:
		return "unknown"
	}
}

// Record is one trace event.
type Record struct {
	// Kind tags the record.
	Kind Kind
	// WallCycles is the machine wall-clock at recording time.
	WallCycles uint64
	// Thread is the acting simulation thread (-1 when global).
	Thread int
	// Value is kind-specific (GVT value, etc.).
	Value float64
	// Aux is kind-specific (rollback depth, core id, participants).
	Aux int64
}

// Recorder accumulates records up to a limit.
type Recorder struct {
	// Clock supplies the machine wall-clock; nil records zero times.
	Clock func() uint64

	records []Record
	limit   int
	dropped uint64
}

// New returns a recorder keeping at most limit records (<=0 selects
// 1<<20); further records are counted as dropped.
func New(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{limit: limit}
}

// Add appends a record, stamping the wall clock.
func (r *Recorder) Add(kind Kind, thread int, value float64, aux int64) {
	if len(r.records) >= r.limit {
		r.dropped++
		return
	}
	var now uint64
	if r.Clock != nil {
		now = r.Clock()
	}
	r.records = append(r.records, Record{Kind: kind, WallCycles: now, Thread: thread, Value: value, Aux: aux})
}

// Records returns all retained records in order.
func (r *Recorder) Records() []Record { return r.records }

// Dropped reports how many records hit the limit.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// CountKind returns how many records of the kind were retained.
func (r *Recorder) CountKind(k Kind) int {
	n := 0
	for _, rec := range r.records {
		if rec.Kind == k {
			n++
		}
	}
	return n
}

// GVTSeries returns (wall cycles, gvt) pairs in publication order.
func (r *Recorder) GVTSeries() (cycles []uint64, gvt []float64) {
	for _, rec := range r.records {
		if rec.Kind == KindGVT {
			cycles = append(cycles, rec.WallCycles)
			gvt = append(gvt, rec.Value)
		}
	}
	return cycles, gvt
}

// Interval is a half-open [Start, End) span in machine wall cycles.
type Interval struct {
	Start, End uint64
}

// InactiveIntervals reconstructs, per thread, the spans during which it
// was de-scheduled, from Deactivate/Activate pairs. endCycles closes
// intervals still open at the end of the run.
func (r *Recorder) InactiveIntervals(threads int, endCycles uint64) [][]Interval {
	out := make([][]Interval, threads)
	open := make(map[int]uint64)
	for _, rec := range r.records {
		switch rec.Kind {
		case KindDeactivate:
			if rec.Thread >= 0 && rec.Thread < threads {
				open[rec.Thread] = rec.WallCycles
			}
		case KindActivate:
			if start, ok := open[rec.Thread]; ok {
				out[rec.Thread] = append(out[rec.Thread], Interval{start, rec.WallCycles})
				delete(open, rec.Thread)
			}
		}
	}
	for tid, start := range open {
		out[tid] = append(out[tid], Interval{start, endCycles})
	}
	for _, iv := range out {
		sort.Slice(iv, func(i, j int) bool { return iv[i].Start < iv[j].Start })
	}
	return out
}

// InactiveFraction returns the fraction of total thread-time spent
// de-scheduled across all threads, given the run length.
func (r *Recorder) InactiveFraction(threads int, endCycles uint64) float64 {
	if threads == 0 || endCycles == 0 {
		return 0
	}
	var inactive uint64
	for _, iv := range r.InactiveIntervals(threads, endCycles) {
		for _, i := range iv {
			inactive += i.End - i.Start
		}
	}
	return float64(inactive) / (float64(endCycles) * float64(threads))
}

// MeanRollbackDepth returns the average events undone per rollback.
func (r *Recorder) MeanRollbackDepth() float64 {
	var n, sum int64
	for _, rec := range r.records {
		if rec.Kind == KindRollback {
			n++
			sum += rec.Aux
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// WriteCSV emits all records as kind,wall_cycles,thread,value,aux rows.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "kind,wall_cycles,thread,value,aux"); err != nil {
		return err
	}
	for _, rec := range r.records {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%g,%d\n",
			rec.Kind, rec.WallCycles, rec.Thread, rec.Value, rec.Aux); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a one-paragraph digest of the trace.
func (r *Recorder) Summary(threads int, endCycles uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d records", len(r.records))
	if r.dropped > 0 {
		fmt.Fprintf(&b, " (+%d dropped)", r.dropped)
	}
	fmt.Fprintf(&b, "; gvt updates %d, rounds %d", r.CountKind(KindGVT), r.CountKind(KindRound))
	fmt.Fprintf(&b, "; rollbacks %d (mean depth %.1f)", r.CountKind(KindRollback), r.MeanRollbackDepth())
	fmt.Fprintf(&b, "; deactivations %d, activations %d, repins %d",
		r.CountKind(KindDeactivate), r.CountKind(KindActivate), r.CountKind(KindRepin))
	if threads > 0 && endCycles > 0 {
		fmt.Fprintf(&b, "; de-scheduled %.1f%% of thread-time", r.InactiveFraction(threads, endCycles)*100)
	}
	return b.String()
}
