// Package trace records simulation-run events — GVT progression,
// rollbacks, demand-driven scheduling transitions, affinity repins,
// commits, anti-messages, machine migrations and preemptions — for
// post-run analysis, mirroring the instrumentation layers PDES engines
// like ROSS ship with. Recording is allocation-light (one flat record
// slice, optionally managed as a ring) and safe on the simulated
// machine because execution is serialized.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind tags a trace record.
type Kind uint8

// Record kinds.
const (
	// KindGVT: a GVT publication. Value = new GVT.
	KindGVT Kind = iota
	// KindRound: a completed GVT round. Aux = participants.
	KindRound
	// KindRollback: a rollback episode. Aux = events undone.
	KindRollback
	// KindDeactivate: thread scheduled out.
	KindDeactivate
	// KindActivate: thread scheduled back in.
	KindActivate
	// KindRepin: dynamic affinity pinned the thread. Aux = core.
	KindRepin
	// KindCommit: a fossil-collection pass committed events. Value =
	// the GVT it collected below, Aux = events committed.
	KindCommit
	// KindAntiMessage: an anti-message was sent. Value = target
	// timestamp, Aux = destination LP.
	KindAntiMessage
	// KindMigration: the machine moved the thread between cores. Aux =
	// destination core.
	KindMigration
	// KindPreempt: the machine preempted the running thread. Aux = core
	// it was preempted on.
	KindPreempt
)

// NumKinds is the number of defined record kinds.
const NumKinds = 10

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindGVT:
		return "gvt"
	case KindRound:
		return "round"
	case KindRollback:
		return "rollback"
	case KindDeactivate:
		return "deactivate"
	case KindActivate:
		return "activate"
	case KindRepin:
		return "repin"
	case KindCommit:
		return "commit"
	case KindAntiMessage:
		return "antimessage"
	case KindMigration:
		return "migration"
	case KindPreempt:
		return "preempt"
	default:
		return "unknown"
	}
}

// Record is one trace event.
type Record struct {
	// Kind tags the record.
	Kind Kind
	// WallCycles is the machine wall-clock at recording time.
	WallCycles uint64
	// Thread is the acting simulation thread (-1 when global).
	Thread int
	// Value is kind-specific (GVT value, etc.).
	Value float64
	// Aux is kind-specific (rollback depth, core id, participants).
	Aux int64
}

// Recorder accumulates records up to a limit. In the default mode
// records past the limit are dropped (keep-oldest); in ring mode the
// oldest records are overwritten instead (keep-newest), so long runs
// retain the tail where the interesting behaviour usually is. Dropped
// reports the lost count in both modes.
type Recorder struct {
	// Clock supplies the machine wall-clock; nil records zero times.
	Clock func() uint64

	records []Record
	limit   int
	ring    bool
	// start indexes the oldest record once a ring has wrapped.
	start   int
	dropped uint64
}

// defaultLimit is the retained-record cap when none is given.
const defaultLimit = 1 << 20

// New returns a recorder keeping at most limit records (<=0 selects
// 1<<20); further records are counted as dropped.
func New(limit int) *Recorder {
	if limit <= 0 {
		limit = defaultLimit
	}
	return &Recorder{limit: limit}
}

// NewRing returns a recorder that keeps the newest limit records
// (<=0 selects 1<<20), overwriting the oldest once full; overwritten
// records are counted as dropped.
func NewRing(limit int) *Recorder {
	r := New(limit)
	r.ring = true
	return r
}

// Ring reports whether the recorder retains newest (ring) or oldest
// records.
func (r *Recorder) Ring() bool { return r.ring }

// Add appends a record, stamping the wall clock.
func (r *Recorder) Add(kind Kind, thread int, value float64, aux int64) {
	if len(r.records) >= r.limit && !r.ring {
		r.dropped++
		return
	}
	var now uint64
	if r.Clock != nil {
		now = r.Clock()
	}
	rec := Record{Kind: kind, WallCycles: now, Thread: thread, Value: value, Aux: aux}
	if len(r.records) >= r.limit {
		// Ring overwrite: the slot at start holds the oldest record.
		r.records[r.start] = rec
		r.start++
		if r.start == r.limit {
			r.start = 0
		}
		r.dropped++
		return
	}
	r.records = append(r.records, rec)
}

// Len returns the number of retained records.
func (r *Recorder) Len() int { return len(r.records) }

// forEach visits retained records in recording order (handles ring
// wrap-around without allocating).
func (r *Recorder) forEach(fn func(*Record)) {
	for i := r.start; i < len(r.records); i++ {
		fn(&r.records[i])
	}
	for i := 0; i < r.start; i++ {
		fn(&r.records[i])
	}
}

// Records returns all retained records in recording order.
func (r *Recorder) Records() []Record {
	if r.start == 0 {
		return r.records
	}
	out := make([]Record, 0, len(r.records))
	out = append(out, r.records[r.start:]...)
	out = append(out, r.records[:r.start]...)
	return out
}

// Dropped reports how many records hit the limit (default mode) or were
// overwritten (ring mode).
func (r *Recorder) Dropped() uint64 { return r.dropped }

// CountKind returns how many records of the kind were retained.
func (r *Recorder) CountKind(k Kind) int {
	n := 0
	r.forEach(func(rec *Record) {
		if rec.Kind == k {
			n++
		}
	})
	return n
}

// SumAux returns the sum of Aux over records of the kind.
func (r *Recorder) SumAux(k Kind) int64 {
	var sum int64
	r.forEach(func(rec *Record) {
		if rec.Kind == k {
			sum += rec.Aux
		}
	})
	return sum
}

// GVTSeries returns (wall cycles, gvt) pairs in publication order.
func (r *Recorder) GVTSeries() (cycles []uint64, gvt []float64) {
	r.forEach(func(rec *Record) {
		if rec.Kind == KindGVT {
			cycles = append(cycles, rec.WallCycles)
			gvt = append(gvt, rec.Value)
		}
	})
	return cycles, gvt
}

// Interval is a half-open [Start, End) span in machine wall cycles.
type Interval struct {
	Start, End uint64
}

// InactiveIntervals reconstructs, per thread, the spans during which it
// was de-scheduled, from Deactivate/Activate pairs. endCycles closes
// intervals still open at the end of the run. Malformed streams (as can
// arise from edited CSVs or ring-truncated traces) degrade safely: a
// repeated Deactivate keeps the earliest open start, an Activate with
// no matching Deactivate is ignored, a pair whose stamps run backwards
// is dropped, and the returned spans per thread are always sorted,
// non-overlapping and well-formed (Start <= End).
func (r *Recorder) InactiveIntervals(threads int, endCycles uint64) [][]Interval {
	out := make([][]Interval, threads)
	open := make(map[int]uint64)
	r.forEach(func(rec *Record) {
		if rec.Thread < 0 || rec.Thread >= threads {
			return
		}
		switch rec.Kind {
		case KindDeactivate:
			if _, dup := open[rec.Thread]; dup {
				return // double-deactivate: keep the earliest start
			}
			open[rec.Thread] = rec.WallCycles
		case KindActivate:
			start, ok := open[rec.Thread]
			if !ok {
				return // activate without a matching deactivate
			}
			delete(open, rec.Thread)
			if rec.WallCycles < start {
				return // stamps run backwards: drop the pair
			}
			out[rec.Thread] = append(out[rec.Thread], Interval{start, rec.WallCycles})
		}
	})
	for tid, start := range open {
		if endCycles >= start {
			out[tid] = append(out[tid], Interval{start, endCycles})
		}
	}
	for tid, iv := range out {
		out[tid] = normalizeIntervals(iv)
	}
	return out
}

// normalizeIntervals sorts spans and resolves overlaps (possible only
// in malformed streams) by clamping each span's start to its
// predecessor's end; spans emptied by clamping are removed.
func normalizeIntervals(iv []Interval) []Interval {
	sort.Slice(iv, func(i, j int) bool { return iv[i].Start < iv[j].Start })
	keep := iv[:0]
	for _, in := range iv {
		if len(keep) > 0 && in.Start < keep[len(keep)-1].End {
			in.Start = keep[len(keep)-1].End
			if in.End < in.Start {
				continue
			}
		}
		keep = append(keep, in)
	}
	return keep
}

// InactiveFraction returns the fraction of total thread-time spent
// de-scheduled across all threads, given the run length.
func (r *Recorder) InactiveFraction(threads int, endCycles uint64) float64 {
	if threads == 0 || endCycles == 0 {
		return 0
	}
	var inactive uint64
	for _, iv := range r.InactiveIntervals(threads, endCycles) {
		for _, i := range iv {
			inactive += i.End - i.Start
		}
	}
	return float64(inactive) / (float64(endCycles) * float64(threads))
}

// MeanRollbackDepth returns the average events undone per rollback.
func (r *Recorder) MeanRollbackDepth() float64 {
	n := r.CountKind(KindRollback)
	if n == 0 {
		return 0
	}
	return float64(r.SumAux(KindRollback)) / float64(n)
}

// WriteCSV emits all records as kind,wall_cycles,thread,value,aux rows.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "kind,wall_cycles,thread,value,aux"); err != nil {
		return err
	}
	var werr error
	r.forEach(func(rec *Record) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(w, "%s,%d,%d,%g,%d\n",
			rec.Kind, rec.WallCycles, rec.Thread, rec.Value, rec.Aux)
	})
	return werr
}

// Summary renders a one-paragraph digest of the trace.
func (r *Recorder) Summary(threads int, endCycles uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d records", len(r.records))
	if r.dropped > 0 {
		if r.ring {
			fmt.Fprintf(&b, " (ring, %d overwritten)", r.dropped)
		} else {
			fmt.Fprintf(&b, " (+%d dropped)", r.dropped)
		}
	}
	fmt.Fprintf(&b, "; gvt updates %d, rounds %d", r.CountKind(KindGVT), r.CountKind(KindRound))
	fmt.Fprintf(&b, "; rollbacks %d (mean depth %.1f)", r.CountKind(KindRollback), r.MeanRollbackDepth())
	fmt.Fprintf(&b, "; deactivations %d, activations %d, repins %d",
		r.CountKind(KindDeactivate), r.CountKind(KindActivate), r.CountKind(KindRepin))
	if n := r.CountKind(KindCommit); n > 0 {
		fmt.Fprintf(&b, "; commits %d (%d events)", n, r.SumAux(KindCommit))
	}
	if n := r.CountKind(KindAntiMessage); n > 0 {
		fmt.Fprintf(&b, "; anti-messages %d", n)
	}
	if n := r.CountKind(KindMigration); n > 0 {
		fmt.Fprintf(&b, "; migrations %d", n)
	}
	if n := r.CountKind(KindPreempt); n > 0 {
		fmt.Fprintf(&b, "; preemptions %d", n)
	}
	if threads > 0 && endCycles > 0 {
		fmt.Fprintf(&b, "; de-scheduled %.1f%% of thread-time", r.InactiveFraction(threads, endCycles)*100)
	}
	return b.String()
}
