package trace

import (
	"fmt"
	"strings"
)

// RenderTimeline draws an ASCII activity Gantt: one row per thread,
// '#' while scheduled, '.' while de-scheduled, sampled into width
// columns over [0, endCycles). Threads beyond maxRows are elided.
func (r *Recorder) RenderTimeline(threads int, endCycles uint64, width, maxRows int) string {
	if width <= 0 {
		width = 80
	}
	if maxRows <= 0 {
		maxRows = 64
	}
	if endCycles == 0 || threads == 0 {
		return "(empty timeline)\n"
	}
	intervals := r.InactiveIntervals(threads, endCycles)
	var b strings.Builder
	fmt.Fprintf(&b, "thread activity over %d cycles ('#' scheduled, '.' de-scheduled)\n", endCycles)
	rows := threads
	elided := 0
	if rows > maxRows {
		elided = rows - maxRows
		rows = maxRows
	}
	cell := float64(endCycles) / float64(width)
	for tid := 0; tid < rows; tid++ {
		line := make([]byte, width)
		for col := 0; col < width; col++ {
			mid := uint64((float64(col) + 0.5) * cell)
			line[col] = '#'
			for _, iv := range intervals[tid] {
				if mid >= iv.Start && mid < iv.End {
					line[col] = '.'
					break
				}
			}
		}
		fmt.Fprintf(&b, "%4d |%s|\n", tid, line)
	}
	if elided > 0 {
		fmt.Fprintf(&b, "     ... %d more threads elided ...\n", elided)
	}
	return b.String()
}
