package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRecorder builds a small deterministic trace exercising every
// event family the exporter emits.
func goldenRecorder() *Recorder {
	r := New(0)
	tick := uint64(0)
	r.Clock = func() uint64 { return tick }
	tick = 100
	r.Add(KindGVT, -1, 0, 0)
	tick = 150
	r.Add(KindDeactivate, 1, 0, 0)
	tick = 200
	r.Add(KindRollback, 0, 40, 6)
	tick = 250
	r.Add(KindRepin, 0, 0, 2)
	tick = 300
	r.Add(KindActivate, 1, 0, 0)
	tick = 350
	r.Add(KindMigration, 1, 0, 3)
	tick = 400
	r.Add(KindPreempt, 0, 0, 1)
	tick = 450
	r.Add(KindCommit, 0, 80, 120)
	tick = 500
	r.Add(KindGVT, -1, 90, 0)
	tick = 550
	r.Add(KindCommit, 0, 90, 30)
	tick = 600
	r.Add(KindDeactivate, 0, 0, 0) // open at end of run
	return r
}

func TestPerfettoGolden(t *testing.T) {
	r := goldenRecorder()
	var buf bytes.Buffer
	if err := r.WritePerfetto(&buf, PerfettoOptions{Threads: 2, EndCycles: 700}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("perfetto output differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestPerfettoStructure(t *testing.T) {
	r := goldenRecorder()
	var buf bytes.Buffer
	if err := r.WritePerfetto(&buf, PerfettoOptions{Threads: 2, EndCycles: 700}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" {
		t.Fatal("missing displayTimeUnit")
	}
	byPh := map[string]int{}
	slices, counters := 0, map[string]int{}
	for _, ev := range doc.TraceEvents {
		byPh[ev.Ph]++
		switch ev.Ph {
		case "M":
			if ev.Args["name"] == nil {
				t.Fatalf("metadata without name: %+v", ev)
			}
		case "X":
			slices++
			if ev.Name != "descheduled" || ev.Dur <= 0 {
				t.Fatalf("bad slice: %+v", ev)
			}
		case "C":
			counters[ev.Name]++
		case "i":
			if ev.Tid < 0 || ev.Tid > 1 {
				t.Fatalf("instant off-track: %+v", ev)
			}
		}
	}
	// process_name + 2 thread_name entries.
	if byPh["M"] != 3 {
		t.Fatalf("metadata events = %d", byPh["M"])
	}
	// Thread 1's closed span and thread 0's open-at-end span.
	if slices != 2 {
		t.Fatalf("descheduled slices = %d", slices)
	}
	if counters["GVT"] != 2 || counters["committed events"] != 2 {
		t.Fatalf("counter tracks = %v", counters)
	}
	// rollback, repin, migrate, preempt.
	if byPh["i"] != 4 {
		t.Fatalf("instants = %d", byPh["i"])
	}
}

func TestPerfettoFreqConversion(t *testing.T) {
	r := New(0)
	tick := uint64(2_000_000)
	r.Clock = func() uint64 { return tick }
	r.Add(KindGVT, -1, 5, 0)
	var buf bytes.Buffer
	// 1 GHz: 2e6 cycles = 2000 us.
	if err := r.WritePerfetto(&buf, PerfettoOptions{FreqHz: 1e9, Threads: 1, EndCycles: tick}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "GVT" && ev.Ts != 2000 {
			t.Fatalf("ts = %v, want 2000", ev.Ts)
		}
	}
}
