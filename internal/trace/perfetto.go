package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// PerfettoOptions configures Chrome trace-event JSON export.
type PerfettoOptions struct {
	// FreqHz converts wall cycles to microseconds (the trace-event time
	// unit); 0 emits raw cycles as microseconds.
	FreqHz float64
	// Threads is the number of thread tracks to emit; 0 derives it from
	// the largest thread id in the trace.
	Threads int
	// EndCycles closes still-open de-schedule spans; 0 derives it from
	// the latest record stamp.
	EndCycles uint64
}

// perfettoEvent is one entry of the Chrome trace-event "JSON Array
// Format" (also accepted by ui.perfetto.dev). Field order is the
// marshalling order, kept stable for golden tests.
type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoTrace is the top-level JSON object.
type perfettoTrace struct {
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	TraceEvents     []perfettoEvent `json:"traceEvents"`
}

// perfettoPid is the single synthetic process all tracks live under.
const perfettoPid = 1

// WritePerfetto exports the trace as Chrome trace-event JSON, openable
// directly in ui.perfetto.dev or chrome://tracing: one track per
// simulation thread carrying "descheduled" duration slices
// (Deactivate→Activate spans) and instant events for repins,
// rollbacks, migrations and preemptions; a "GVT" counter track for the
// virtual-time progression; and a cumulative "committed events"
// counter track fed by fossil-collection records.
func (r *Recorder) WritePerfetto(w io.Writer, opts PerfettoOptions) error {
	threads := opts.Threads
	if threads <= 0 {
		threads = r.MaxThread() + 1
	}
	end := opts.EndCycles
	if end == 0 {
		end = r.EndCycles()
	}
	us := func(cycles uint64) float64 {
		if opts.FreqHz > 0 {
			return float64(cycles) / opts.FreqHz * 1e6
		}
		return float64(cycles)
	}

	events := []perfettoEvent{{
		Name: "process_name", Ph: "M", Pid: perfettoPid,
		Args: map[string]any{"name": "ggpdes"},
	}}
	for tid := 0; tid < threads; tid++ {
		events = append(events, perfettoEvent{
			Name: "thread_name", Ph: "M", Pid: perfettoPid, Tid: tid,
			Args: map[string]any{"name": fmt.Sprintf("sim-%d", tid)},
		})
	}

	// De-schedule spans as complete ("X") slices on each thread track.
	for tid, spans := range r.InactiveIntervals(threads, end) {
		for _, iv := range spans {
			events = append(events, perfettoEvent{
				Name: "descheduled", Ph: "X", Pid: perfettoPid, Tid: tid,
				Ts: us(iv.Start), Dur: us(iv.End) - us(iv.Start),
			})
		}
	}

	// Point and counter events in recording order.
	var committed int64
	r.forEach(func(rec *Record) {
		switch rec.Kind {
		case KindGVT:
			events = append(events, perfettoEvent{
				Name: "GVT", Ph: "C", Pid: perfettoPid, Ts: us(rec.WallCycles),
				Args: map[string]any{"gvt": rec.Value},
			})
		case KindCommit:
			committed += rec.Aux
			events = append(events, perfettoEvent{
				Name: "committed events", Ph: "C", Pid: perfettoPid, Ts: us(rec.WallCycles),
				Args: map[string]any{"events": committed},
			})
		case KindRollback:
			events = append(events, instant(rec, threads, us, "rollback",
				map[string]any{"depth": rec.Aux, "to_ts": rec.Value}))
		case KindRepin:
			events = append(events, instant(rec, threads, us, "repin",
				map[string]any{"core": rec.Aux}))
		case KindMigration:
			events = append(events, instant(rec, threads, us, "migrate",
				map[string]any{"core": rec.Aux}))
		case KindPreempt:
			events = append(events, instant(rec, threads, us, "preempt",
				map[string]any{"core": rec.Aux}))
		}
	})

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(perfettoTrace{DisplayTimeUnit: "ms", TraceEvents: events})
}

// instant builds a thread-scoped instant ("i") event; records with no
// valid thread land on track 0.
func instant(rec *Record, threads int, us func(uint64) float64, name string, args map[string]any) perfettoEvent {
	tid := rec.Thread
	if tid < 0 || tid >= threads {
		tid = 0
	}
	return perfettoEvent{
		Name: name, Ph: "i", Pid: perfettoPid, Tid: tid,
		Ts: us(rec.WallCycles), S: "t", Args: args,
	}
}
