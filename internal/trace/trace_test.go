package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndCount(t *testing.T) {
	r := New(100)
	clock := uint64(0)
	r.Clock = func() uint64 { clock += 10; return clock }
	r.Add(KindGVT, -1, 1.5, 0)
	r.Add(KindRollback, 3, 2.0, 7)
	r.Add(KindRollback, 1, 2.5, 3)
	if len(r.Records()) != 3 {
		t.Fatalf("records = %d", len(r.Records()))
	}
	if r.CountKind(KindRollback) != 2 || r.CountKind(KindGVT) != 1 || r.CountKind(KindRepin) != 0 {
		t.Fatal("counts wrong")
	}
	if r.Records()[0].WallCycles != 10 || r.Records()[2].WallCycles != 30 {
		t.Fatal("clock not stamped")
	}
}

func TestLimitDrops(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Add(KindRound, i, 0, 0)
	}
	if len(r.Records()) != 2 || r.Dropped() != 3 {
		t.Fatalf("records=%d dropped=%d", len(r.Records()), r.Dropped())
	}
}

func TestNilClockRecordsZero(t *testing.T) {
	r := New(0)
	r.Add(KindGVT, -1, 1, 0)
	if r.Records()[0].WallCycles != 0 {
		t.Fatal("nil clock should stamp zero")
	}
}

func TestGVTSeries(t *testing.T) {
	r := New(0)
	tick := uint64(0)
	r.Clock = func() uint64 { tick += 100; return tick }
	r.Add(KindGVT, -1, 1, 0)
	r.Add(KindRollback, 0, 0, 1)
	r.Add(KindGVT, -1, 2, 0)
	cycles, gvt := r.GVTSeries()
	if len(cycles) != 2 || gvt[0] != 1 || gvt[1] != 2 || cycles[1] <= cycles[0] {
		t.Fatalf("series = %v %v", cycles, gvt)
	}
}

func TestInactiveIntervals(t *testing.T) {
	r := New(0)
	tick := uint64(0)
	r.Clock = func() uint64 { return tick }
	tick = 100
	r.Add(KindDeactivate, 0, 0, 0)
	tick = 300
	r.Add(KindActivate, 0, 0, 0)
	tick = 400
	r.Add(KindDeactivate, 1, 0, 0) // stays open
	iv := r.InactiveIntervals(2, 1000)
	if len(iv[0]) != 1 || iv[0][0] != (Interval{100, 300}) {
		t.Fatalf("thread 0 intervals = %v", iv[0])
	}
	if len(iv[1]) != 1 || iv[1][0] != (Interval{400, 1000}) {
		t.Fatalf("thread 1 intervals = %v", iv[1])
	}
	// Fraction: (200 + 600) / (1000 * 2) = 0.4.
	if f := r.InactiveFraction(2, 1000); f != 0.4 {
		t.Fatalf("fraction = %v", f)
	}
}

func TestMeanRollbackDepth(t *testing.T) {
	r := New(0)
	if r.MeanRollbackDepth() != 0 {
		t.Fatal("empty mean not zero")
	}
	r.Add(KindRollback, 0, 0, 4)
	r.Add(KindRollback, 1, 0, 8)
	if got := r.MeanRollbackDepth(); got != 6 {
		t.Fatalf("mean = %v", got)
	}
}

func TestWriteCSV(t *testing.T) {
	r := New(0)
	r.Add(KindRepin, 5, 0, 3)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "kind,wall_cycles,thread,value,aux\n") || !strings.Contains(out, "repin,0,5,0,3") {
		t.Fatalf("csv = %q", out)
	}
}

func TestSummaryMentionsEverything(t *testing.T) {
	r := New(0)
	r.Add(KindGVT, -1, 1, 0)
	r.Add(KindRound, 0, 1, 4)
	r.Add(KindRollback, 0, 0, 2)
	r.Add(KindDeactivate, 0, 0, 0)
	r.Add(KindActivate, 0, 0, 0)
	r.Add(KindRepin, 0, 0, 1)
	s := r.Summary(4, 1000)
	for _, want := range []string{"gvt updates 1", "rounds 1", "rollbacks 1", "deactivations 1", "activations 1", "repins 1", "de-scheduled"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindGVT: "gvt", KindRound: "round", KindRollback: "rollback",
		KindDeactivate: "deactivate", KindActivate: "activate", KindRepin: "repin",
		KindCommit: "commit", KindAntiMessage: "antimessage",
		KindMigration: "migration", KindPreempt: "preempt",
		Kind(99): "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
	// Every defined kind must have a name and parse back (guards against
	// adding a kind without extending String/kindFromString).
	for k := Kind(0); k < NumKinds; k++ {
		name := k.String()
		if name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		back, err := kindFromString(name)
		if err != nil || back != k {
			t.Fatalf("kindFromString(%q) = %v, %v", name, back, err)
		}
	}
}

func TestRingKeepsNewest(t *testing.T) {
	r := NewRing(3)
	if !r.Ring() {
		t.Fatal("Ring() false on ring recorder")
	}
	for i := 0; i < 7; i++ {
		r.Add(KindRound, i, float64(i), 0)
	}
	recs := r.Records()
	if len(recs) != 3 || r.Len() != 3 {
		t.Fatalf("len = %d", len(recs))
	}
	if r.Dropped() != 4 {
		t.Fatalf("dropped = %d, want 4", r.Dropped())
	}
	// Newest three, in recording order.
	for i, want := range []int{4, 5, 6} {
		if recs[i].Thread != want {
			t.Fatalf("recs = %+v", recs)
		}
	}
}

func TestRingOrderAcrossWrap(t *testing.T) {
	r := NewRing(4)
	tick := uint64(0)
	r.Clock = func() uint64 { tick++; return tick }
	for i := 0; i < 10; i++ {
		r.Add(KindGVT, -1, float64(i), 0)
	}
	cycles, gvt := r.GVTSeries()
	if len(gvt) != 4 {
		t.Fatalf("series len = %d", len(gvt))
	}
	for i := 1; i < len(cycles); i++ {
		if cycles[i] <= cycles[i-1] || gvt[i] <= gvt[i-1] {
			t.Fatalf("ring series out of order: %v %v", cycles, gvt)
		}
	}
	// forEach-backed consumers see wrap order too.
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 || !strings.HasPrefix(lines[1], "gvt,7,") {
		t.Fatalf("csv:\n%s", buf.String())
	}
}

func TestRingSummaryMentionsOverwritten(t *testing.T) {
	r := NewRing(1)
	r.Add(KindGVT, -1, 1, 0)
	r.Add(KindGVT, -1, 2, 0)
	if s := r.Summary(0, 0); !strings.Contains(s, "ring, 1 overwritten") {
		t.Fatalf("summary = %q", s)
	}
}

func TestInactiveIntervalsDoubleDeactivate(t *testing.T) {
	r := New(0)
	tick := uint64(0)
	r.Clock = func() uint64 { return tick }
	tick = 100
	r.Add(KindDeactivate, 0, 0, 0)
	tick = 200
	r.Add(KindDeactivate, 0, 0, 0) // duplicate: earliest start wins
	tick = 300
	r.Add(KindActivate, 0, 0, 0)
	iv := r.InactiveIntervals(1, 1000)[0]
	if len(iv) != 1 || iv[0] != (Interval{100, 300}) {
		t.Fatalf("intervals = %v", iv)
	}
}

func TestInactiveIntervalsOrphanActivate(t *testing.T) {
	r := New(0)
	tick := uint64(50)
	r.Clock = func() uint64 { return tick }
	r.Add(KindActivate, 0, 0, 0) // no matching deactivate (ring truncation)
	tick = 100
	r.Add(KindDeactivate, 0, 0, 0)
	tick = 200
	r.Add(KindActivate, 0, 0, 0)
	iv := r.InactiveIntervals(1, 1000)[0]
	if len(iv) != 1 || iv[0] != (Interval{100, 200}) {
		t.Fatalf("intervals = %v", iv)
	}
}

func TestInactiveIntervalsBackwardsStamps(t *testing.T) {
	r := New(0)
	tick := uint64(500)
	r.Clock = func() uint64 { return tick }
	r.Add(KindDeactivate, 0, 0, 0)
	tick = 100 // clock runs backwards (edited CSV)
	r.Add(KindActivate, 0, 0, 0)
	if iv := r.InactiveIntervals(1, 1000)[0]; len(iv) != 0 {
		t.Fatalf("backwards pair kept: %v", iv)
	}
	// An open interval past endCycles is dropped too.
	r2 := New(0)
	tick2 := uint64(900)
	r2.Clock = func() uint64 { return tick2 }
	r2.Add(KindDeactivate, 0, 0, 0)
	if iv := r2.InactiveIntervals(1, 500)[0]; len(iv) != 0 {
		t.Fatalf("open interval past end kept: %v", iv)
	}
}

func TestInactiveIntervalsOutOfRangeThread(t *testing.T) {
	r := New(0)
	r.Add(KindDeactivate, 7, 0, 0)
	r.Add(KindActivate, -1, 0, 0)
	iv := r.InactiveIntervals(2, 100)
	if len(iv[0]) != 0 || len(iv[1]) != 0 {
		t.Fatalf("out-of-range threads leaked: %v", iv)
	}
}

func TestNormalizeIntervalsOverlap(t *testing.T) {
	got := normalizeIntervals([]Interval{{50, 80}, {10, 60}, {55, 58}})
	for i, in := range got {
		if in.End < in.Start {
			t.Fatalf("reversed interval %v", in)
		}
		if i > 0 && in.Start < got[i-1].End {
			t.Fatalf("overlap: %v", got)
		}
	}
}

func TestSumAux(t *testing.T) {
	r := New(0)
	r.Add(KindCommit, 0, 10, 100)
	r.Add(KindCommit, 1, 20, 50)
	r.Add(KindRollback, 0, 0, 9)
	if got := r.SumAux(KindCommit); got != 150 {
		t.Fatalf("SumAux = %d", got)
	}
}

// Property: interval reconstruction never produces overlapping or
// reversed intervals per thread for arbitrary transition sequences.
func TestQuickIntervalsWellFormed(t *testing.T) {
	f := func(ops []bool) bool {
		r := New(0)
		tick := uint64(0)
		r.Clock = func() uint64 { return tick }
		inactive := false
		for _, deact := range ops {
			tick += 10
			if deact && !inactive {
				r.Add(KindDeactivate, 0, 0, 0)
				inactive = true
			} else if !deact && inactive {
				r.Add(KindActivate, 0, 0, 0)
				inactive = false
			}
		}
		iv := r.InactiveIntervals(1, tick+10)[0]
		for i, in := range iv {
			if in.End < in.Start {
				return false
			}
			if i > 0 && in.Start < iv[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRenderTimeline(t *testing.T) {
	r := New(0)
	tick := uint64(0)
	r.Clock = func() uint64 { return tick }
	tick = 500
	r.Add(KindDeactivate, 1, 0, 0)
	tick = 900
	r.Add(KindActivate, 1, 0, 0)
	out := r.RenderTimeline(2, 1000, 20, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Thread 0 fully active; thread 1 has a de-scheduled stretch.
	if strings.Contains(lines[1], ".") {
		t.Fatalf("thread 0 shows inactivity: %s", lines[1])
	}
	if !strings.Contains(lines[2], ".") || !strings.Contains(lines[2], "#") {
		t.Fatalf("thread 1 missing mixed activity: %s", lines[2])
	}
}

func TestRenderTimelineElides(t *testing.T) {
	r := New(0)
	out := r.RenderTimeline(100, 1000, 10, 4)
	if !strings.Contains(out, "96 more threads elided") {
		t.Fatalf("no elision note:\n%s", out)
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	r := New(0)
	if out := r.RenderTimeline(0, 0, 10, 10); !strings.Contains(out, "empty") {
		t.Fatalf("out = %q", out)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	// One record of every defined kind, with distinctive field values.
	r := New(0)
	tick := uint64(0)
	r.Clock = func() uint64 { tick += 7; return tick }
	for k := Kind(0); k < NumKinds; k++ {
		r.Add(k, int(k)-1, 1.25*float64(k), int64(k)*3)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records()) != len(r.Records()) {
		t.Fatalf("records %d != %d", len(back.Records()), len(r.Records()))
	}
	for i, want := range r.Records() {
		if back.Records()[i] != want {
			t.Fatalf("record %d = %+v, want %+v", i, back.Records()[i], want)
		}
	}
	if back.MaxThread() != int(NumKinds)-2 || back.EndCycles() != 7*NumKinds {
		t.Fatalf("MaxThread=%d EndCycles=%d", back.MaxThread(), back.EndCycles())
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"wrong,header\n",
		"kind,wall_cycles,thread,value,aux\nnot-a-kind,1,2,3,4\n",
		"kind,wall_cycles,thread,value,aux\ngvt,xx,2,3,4\n",
		"kind,wall_cycles,thread,value,aux\ngvt,1,2,3\n",
		"kind,wall_cycles,thread,value,aux\ngvt,1,zz,3,4\n",
		"kind,wall_cycles,thread,value,aux\ngvt,1,2,zz,4\n",
		"kind,wall_cycles,thread,value,aux\ngvt,1,2,3,zz\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	in := "kind,wall_cycles,thread,value,aux\n\ngvt,5,-1,2,0\n\n"
	rec, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records()) != 1 {
		t.Fatalf("records = %d", len(rec.Records()))
	}
}
