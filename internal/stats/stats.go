// Package stats formats experiment metrics into the tables and series
// the paper reports: committed event rates, GVT CPU times, instruction
// (cycle) counts, and rollback statistics.
package stats

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; it panics if the arity differs from the headers.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("stats: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	t.rows = append(t.rows, cells)
}

// AddF appends a row of formatted values.
func (t *Table) AddF(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Add(row...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// Rate formats an event rate in engineering units (K/M events/s).
func Rate(eventsPerSecond float64) string {
	switch {
	case eventsPerSecond >= 1e9:
		return fmt.Sprintf("%.2fB ev/s", eventsPerSecond/1e9)
	case eventsPerSecond >= 1e6:
		return fmt.Sprintf("%.2fM ev/s", eventsPerSecond/1e6)
	case eventsPerSecond >= 1e3:
		return fmt.Sprintf("%.2fK ev/s", eventsPerSecond/1e3)
	default:
		return fmt.Sprintf("%.1f ev/s", eventsPerSecond)
	}
}

// Count formats a count in engineering units.
func Count(n uint64) string {
	switch {
	case n >= 1e12:
		return fmt.Sprintf("%.2fT", float64(n)/1e12)
	case n >= 1e9:
		return fmt.Sprintf("%.2fB", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Seconds formats a duration in seconds with sensible precision.
func Seconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0fs", s)
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.1fus", s*1e6)
	}
}

// Speedup formats a ratio as the paper quotes improvements ("+17%",
// "-4.3%", "15.0x").
func Speedup(new, base float64) string {
	if base == 0 {
		return "n/a"
	}
	r := new / base
	if r >= 2 {
		return fmt.Sprintf("%.1fx", r)
	}
	return fmt.Sprintf("%+.1f%%", (r-1)*100)
}
