package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Figure X", "threads", "rate")
	tbl.Add("64", "1.2M ev/s")
	tbl.AddF(128, 3.5)
	s := tbl.String()
	if !strings.Contains(s, "Figure X") || !strings.Contains(s, "threads") {
		t.Fatalf("missing title/header:\n%s", s)
	}
	if !strings.Contains(s, "128") || !strings.Contains(s, "3.5") {
		t.Fatalf("missing AddF row:\n%s", s)
	}
	if tbl.Rows() != 2 {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	// Columns align: every line after the separator starts at col 0 and
	// the second column starts at the same offset.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), s)
	}
}

func TestTableArityPanics(t *testing.T) {
	tbl := NewTable("", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	tbl.Add("only-one")
}

func TestRateUnits(t *testing.T) {
	cases := map[float64]string{
		5:     "5.0 ev/s",
		5e3:   "5.00K ev/s",
		2.5e6: "2.50M ev/s",
		1.2e9: "1.20B ev/s",
	}
	for in, want := range cases {
		if got := Rate(in); got != want {
			t.Errorf("Rate(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestCountUnits(t *testing.T) {
	cases := map[uint64]string{
		7:                 "7",
		7_500:             "7.5K",
		7_500_000:         "7.50M",
		3_100_000_000:     "3.10B",
		2_000_000_000_000: "2.00T",
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSecondsUnits(t *testing.T) {
	cases := map[float64]string{
		250:    "250s",
		2.5:    "2.50s",
		0.0025: "2.50ms",
		2.5e-6: "2.5us",
	}
	for in, want := range cases {
		if got := Seconds(in); got != want {
			t.Errorf("Seconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(1.17, 1.0); got != "+17.0%" {
		t.Errorf("Speedup = %q", got)
	}
	if got := Speedup(0.957, 1.0); got != "-4.3%" {
		t.Errorf("Speedup = %q", got)
	}
	if got := Speedup(15, 1); got != "15.0x" {
		t.Errorf("Speedup = %q", got)
	}
	if got := Speedup(1, 0); got != "n/a" {
		t.Errorf("Speedup = %q", got)
	}
}

func TestBarChartRendering(t *testing.T) {
	c := NewBarChart("Figure X", "ev/s")
	c.Width = 10
	c.Add("64 threads", "Baseline", 1e6)
	c.Add("64 threads", "GG-PDES", 2e6)
	c.Add("128 threads", "Baseline", 0.5e6)
	c.Add("128 threads", "GG-PDES", 2e6)
	out := c.String()
	for _, want := range []string{"Figure X", "64 threads:", "128 threads:", "Baseline", "GG-PDES"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// The max value gets the full width; half value gets half.
	lines := strings.Split(out, "\n")
	var baseBar, ggBar int
	for _, l := range lines[1:4] {
		n := strings.Count(l, "#")
		if strings.Contains(l, "Baseline") {
			baseBar = n
		}
		if strings.Contains(l, "GG-PDES") {
			ggBar = n
		}
	}
	if ggBar != 10 || baseBar != 5 {
		t.Fatalf("bars base=%d gg=%d:\n%s", baseBar, ggBar, out)
	}
}

func TestBarChartEmpty(t *testing.T) {
	c := NewBarChart("empty", "")
	if !strings.Contains(c.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestBarChartTinyValueGetsOneBar(t *testing.T) {
	c := NewBarChart("t", "")
	c.Width = 10
	c.Add("g", "big", 1e9)
	c.Add("g", "tiny", 1)
	out := c.String()
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "tiny") && !strings.Contains(l, "#") {
			t.Fatalf("tiny value rendered no bar: %s", l)
		}
	}
}

func TestBarChartSortGroupsNumeric(t *testing.T) {
	c := NewBarChart("t", "")
	c.Add("128 threads", "a", 1)
	c.Add("8 threads", "a", 1)
	c.Add("64 threads", "a", 1)
	c.SortGroupsNumeric()
	out := c.String()
	i8 := strings.Index(out, "8 threads:")
	i64 := strings.Index(out, "64 threads:")
	i128 := strings.Index(out, "128 threads:")
	if !(i8 < i64 && i64 < i128) {
		t.Fatalf("groups not sorted:\n%s", out)
	}
}
