package stats

import (
	"fmt"
	"sort"
	"strings"
)

// BarChart renders grouped horizontal bars, one group per x value and
// one bar per series — the textual analogue of the paper's committed
// event rate figures. Values are scaled to the global maximum.
type BarChart struct {
	Title string
	// Unit labels the values (e.g. "ev/s").
	Unit string
	// Width is the maximum bar length in columns (0 = 40).
	Width int

	groups []chartGroup
	series []string
}

type chartGroup struct {
	label string
	vals  map[string]float64
}

// NewBarChart creates an empty chart.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit}
}

// Add records one value for a (group, series) cell, e.g. (threads=64,
// "GG-PDES-Async") -> 5.6e6. Groups and series render in insertion
// order.
func (c *BarChart) Add(group, series string, value float64) {
	for _, s := range c.series {
		if s == series {
			goto haveSeries
		}
	}
	c.series = append(c.series, series)
haveSeries:
	for i := range c.groups {
		if c.groups[i].label == group {
			c.groups[i].vals[series] = value
			return
		}
	}
	c.groups = append(c.groups, chartGroup{label: group, vals: map[string]float64{series: value}})
}

// String renders the chart.
func (c *BarChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, g := range c.groups {
		for _, v := range g.vals {
			if v > max {
				max = v
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if max <= 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	labelW := 0
	for _, s := range c.series {
		if len(s) > labelW {
			labelW = len(s)
		}
	}
	for _, g := range c.groups {
		fmt.Fprintf(&b, "%s:\n", g.label)
		for _, s := range c.series {
			v, ok := g.vals[s]
			if !ok {
				continue
			}
			n := int(v / max * float64(width))
			if n < 1 && v > 0 {
				n = 1
			}
			fmt.Fprintf(&b, "  %-*s |%s %s\n", labelW, s, strings.Repeat("#", n), Rate(v))
		}
	}
	return b.String()
}

// SortGroupsNumeric orders groups by their numeric label (thread
// counts), leaving non-numeric labels at the end in insertion order.
func (c *BarChart) SortGroupsNumeric() {
	sort.SliceStable(c.groups, func(i, j int) bool {
		var a, b int
		_, errA := fmt.Sscanf(c.groups[i].label, "%d", &a)
		_, errB := fmt.Sscanf(c.groups[j].label, "%d", &b)
		if errA != nil || errB != nil {
			return false
		}
		return a < b
	})
}
