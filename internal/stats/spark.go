package stats

import (
	"math"
	"strings"
)

// sparkLevels are the eighth-block glyphs used by Sparkline, lowest
// first.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a single-line unicode block chart, the
// compact form ggtop and ggsim use for per-round series (horizon
// width, rollback rate). Values are scaled to [min, max] of the data;
// non-finite values render as a space. An empty slice renders as "".
//
// When width > 0 and len(values) > width, the series is downsampled by
// averaging fixed-size chunks so the line spans the full history.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	if width > 0 && len(values) > width {
		values = downsample(values, width)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			b.WriteByte(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// downsample shrinks values to width points by averaging equal chunks;
// chunks holding only non-finite values become NaN (a gap).
func downsample(values []float64, width int) []float64 {
	out := make([]float64, 0, width)
	n := len(values)
	for i := 0; i < width; i++ {
		start, end := i*n/width, (i+1)*n/width
		if end <= start {
			end = start + 1
		}
		sum, cnt := 0.0, 0
		for _, v := range values[start:end] {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				sum += v
				cnt++
			}
		}
		if cnt == 0 {
			out = append(out, math.NaN())
			continue
		}
		out = append(out, sum/float64(cnt))
	}
	return out
}
