package stats

import (
	"math"
	"testing"
	"unicode/utf8"
)

func TestSparklineScaling(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Fatalf("empty input rendered %q", got)
	}
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	if got != "▁▂▃▄▅▆▇█" {
		t.Fatalf("linear ramp = %q", got)
	}
	// Constant series sits on the floor, not the ceiling.
	if got := Sparkline([]float64{5, 5, 5}, 0); got != "▁▁▁" {
		t.Fatalf("constant = %q", got)
	}
	// Non-finite values render as gaps without poisoning the scale.
	got = Sparkline([]float64{0, math.NaN(), 8}, 0)
	if utf8.RuneCountInString(got) != 3 || got[:3] != "▁" || got[len(got)-3:] != "█" {
		t.Fatalf("NaN handling = %q", got)
	}
}

func TestSparklineDownsample(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	got := Sparkline(vals, 10)
	if utf8.RuneCountInString(got) != 10 {
		t.Fatalf("downsampled width = %d runes (%q)", utf8.RuneCountInString(got), got)
	}
	if got[:3] != "▁" || got[len(got)-3:] != "█" {
		t.Fatalf("downsampled ramp = %q", got)
	}
}
