package ggpdes

import (
	"errors"

	"ggpdes/internal/checkpoint"
)

// Sentinel errors classifying every failure mode of Run, RunContext and
// Resume. Match with errors.Is; returned errors wrap both the sentinel
// and the underlying cause, so errors.Is(err, context.Canceled) keeps
// working alongside errors.Is(err, ErrCancelled). The serving layer
// maps these onto HTTP statuses (400 / 409 / 410 / 504).
var (
	// ErrInvalidConfig wraps every Validate rejection: missing or
	// malformed fields, out-of-range enums, impossible machine shapes,
	// model parameter errors.
	ErrInvalidConfig = errors.New("ggpdes: invalid config")
	// ErrCancelled reports a run stopped by context cancellation.
	ErrCancelled = errors.New("ggpdes: run cancelled")
	// ErrDeadline reports a run stopped by a context deadline.
	ErrDeadline = errors.New("ggpdes: run deadline exceeded")
	// ErrCheckpointCorrupt reports an unreadable, truncated,
	// checksum-mismatched or version-incompatible checkpoint file.
	ErrCheckpointCorrupt = checkpoint.ErrCorrupt
)
