// Package ggpdes is a reproduction of "GVT-Guided Demand-Driven
// Scheduling in Parallel Discrete Event Simulation" (Eker, Timmerman,
// Williams, Chiu, Ponomarev — ICPP 2021).
//
// It bundles a full optimistic (Time Warp) PDES engine, the paper's
// GVT-guided demand-driven thread scheduler (GG-PDES), the prior
// controller-thread design it improves on (DD-PDES), two GVT algorithms
// (synchronous Barrier and asynchronous Wait-Free), three CPU affinity
// algorithms (none / constant / dynamic), and the paper's three
// workloads (PHOLD, Epidemics, Traffic) — all running on a
// deterministic simulated many-core processor that stands in for the
// paper's Knights Landing testbed, since Go's runtime exposes no
// portable thread pinning or core-level de-scheduling.
//
// Quick start:
//
//	res, err := ggpdes.Run(ggpdes.Config{
//		Model:   ggpdes.PHOLD{LPsPerThread: 16, Imbalance: 4},
//		Threads: 64,
//		System:  ggpdes.GGPDES,
//		GVT:     ggpdes.WaitFree,
//		EndTime: 50,
//	})
//	fmt.Println(res.CommittedEventRate, "committed events/s")
package ggpdes

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"ggpdes/internal/core"
	"ggpdes/internal/gvt"
	"ggpdes/internal/machine"
	"ggpdes/internal/pq"
	"ggpdes/internal/telemetry"
	"ggpdes/internal/tw"
)

// System selects the thread-scheduling design under evaluation.
type System int

const (
	// Baseline performs no explicit thread scheduling (the OS/CFS
	// multiplexes everything).
	Baseline System = iota
	// DDPDES is the prior Demand-Driven PDES with a dedicated
	// controller thread and a global lock.
	DDPDES
	// GGPDES is the paper's lock-free, GVT-guided design.
	GGPDES
)

// String returns the system's name as used in the paper.
func (s System) String() string { return core.System(s).String() }

// GVT selects the Global Virtual Time algorithm.
type GVT int

const (
	// Barrier is the synchronous algorithm ("-Sync" systems).
	Barrier GVT = iota
	// WaitFree is the asynchronous five-phase algorithm ("-Async").
	WaitFree
)

// String returns the algorithm's name.
func (g GVT) String() string { return gvt.Kind(g).String() }

// Affinity selects the CPU pinning algorithm (§4.2 / Figure 7).
type Affinity int

const (
	// NoAffinity lets the machine's CFS place and migrate threads.
	NoAffinity Affinity = iota
	// ConstantAffinity pins thread t to core t mod cores at startup.
	ConstantAffinity
	// DynamicAffinity re-pins active threads to idle cores each GVT
	// round (GG-PDES only).
	DynamicAffinity
)

// String returns the affinity algorithm's name.
func (a Affinity) String() string { return core.Affinity(a).String() }

// StateSaving selects the rollback mechanism.
type StateSaving int

const (
	// CopyState snapshots LP state before every event (works for any
	// model).
	CopyState StateSaving = iota
	// ReverseComputation undoes handlers instead (ROSS-style); all
	// bundled models support it.
	ReverseComputation
)

// String returns the policy name.
func (s StateSaving) String() string { return tw.SavePolicy(s).String() }

// Queue selects the pending-event data structure.
type Queue int

const (
	// SplayQueue is the ROSS-style splay tree (default).
	SplayQueue Queue = iota
	// HeapQueue is a binary heap.
	HeapQueue
	// CalendarQueue is a Brown calendar queue.
	CalendarQueue
)

// String returns the queue kind's name.
func (q Queue) String() string { return pq.Kind(q).String() }

// Machine describes the simulated processor. The zero value selects the
// paper's KNL 7230 (64 cores × 4-way SMT at 1.3 GHz).
type Machine struct {
	// Cores is the number of physical cores (0 = 64).
	Cores int
	// SMTWidth is hardware threads per core (0 = 4).
	SMTWidth int
	// FreqHz converts cycles to seconds (0 = 1.3 GHz).
	FreqHz float64
	// NUMANodes partitions the cores into equal nodes (0/1 = uniform);
	// KNL's sub-NUMA clustering. Dynamic affinity becomes NUMA-aware
	// automatically when set.
	NUMANodes int
	// MaxTicks aborts runaway simulations (0 = 1<<26 quanta).
	MaxTicks uint64
}

// KNL7230 returns the paper's evaluation platform.
func KNL7230() Machine { return Machine{Cores: 64, SMTWidth: 4, FreqHz: 1.3e9} }

// KNL7230SNC4 returns the same processor in sub-NUMA-clustering mode
// (4 nodes of 16 cores).
func KNL7230SNC4() Machine {
	m := KNL7230()
	m.NUMANodes = 4
	return m
}

// SmallMachine returns a 4-core, 2-way-SMT machine for quick runs.
func SmallMachine() Machine { return Machine{Cores: 4, SMTWidth: 2, FreqHz: 1.3e9} }

func (m Machine) build() (machine.Config, error) {
	if m.Cores < 0 || m.SMTWidth < 0 || m.FreqHz < 0 || m.NUMANodes < 0 {
		return machine.Config{}, errors.New("ggpdes: Machine fields must be non-negative")
	}
	cfg := machine.KNL7230()
	if m.Cores > 0 {
		cfg.Cores = m.Cores
	}
	if m.SMTWidth > 0 {
		cfg.SMTWidth = m.SMTWidth
		if m.SMTWidth <= len(cfg.SMTAggregate) {
			cfg.SMTAggregate = cfg.SMTAggregate[:m.SMTWidth]
		} else {
			agg := make([]float64, m.SMTWidth)
			for i := range agg {
				agg[i] = 1 + 0.3*float64(i)
			}
			agg[0] = 1
			cfg.SMTAggregate = agg
		}
	}
	if m.FreqHz > 0 {
		cfg.FreqHz = m.FreqHz
	}
	if m.NUMANodes > 1 {
		cfg.NUMANodes = m.NUMANodes
		if cfg.CrossNodeMigrationCycles == 0 {
			cfg.CrossNodeMigrationCycles = 18000
		}
	}
	cfg.MaxTicks = m.MaxTicks
	if cfg.MaxTicks == 0 {
		cfg.MaxTicks = 1 << 26
	}
	return cfg, cfg.Validate()
}

// Config assembles a simulation run.
type Config struct {
	// Model is the workload: PHOLD, Epidemics or Traffic.
	Model Model
	// Threads is the number of simulation threads. More threads than
	// the machine's hardware contexts is the paper's over-subscription
	// scenario.
	Threads int
	// System selects Baseline, DDPDES or GGPDES.
	System System
	// GVT selects Barrier (Sync) or WaitFree (Async).
	GVT GVT
	// Affinity selects the pinning algorithm; DynamicAffinity requires
	// GGPDES.
	Affinity Affinity
	// EndTime is the virtual end time of the simulation.
	EndTime float64
	// Seed drives all model randomness (0 = 1).
	Seed uint64
	// Machine is the simulated processor (zero value = KNL 7230).
	Machine Machine
	// GVTFrequency is main-loop iterations per GVT round (0 = 200, the
	// paper's setting).
	GVTFrequency int
	// ZeroCounterThreshold is empty-queue iterations before a thread is
	// flagged inactive (0 = 2000, the paper's setting).
	ZeroCounterThreshold int
	// BatchSize is events per main-loop cycle (0 = 8, as in ROSS).
	BatchSize int
	// LPsPerKP groups each thread's LPs into ROSS-style kernel
	// processes sharing rollback state (0/1 = one per LP). Larger KPs
	// shrink bookkeeping but roll back whole groups.
	LPsPerKP int
	// Queue selects the pending-event structure (default splay tree).
	Queue Queue
	// StateSaving selects copy state-saving (default) or ROSS-style
	// reverse computation.
	StateSaving StateSaving
	// LazyCancellation defers anti-messages at rollback and re-adopts
	// sends that re-execution regenerates identically — the classic
	// Time Warp optimization. Rarely pays off for models that draw
	// randomness per event (stragglers shift the stream), which the
	// ablation benchmark demonstrates.
	LazyCancellation bool
	// AdaptiveGVT, when non-nil, lets the GVT round frequency self-tune
	// between the given bounds based on speculative memory growth.
	AdaptiveGVT *AdaptiveGVT
	// Trace enables run instrumentation when non-nil.
	Trace *TraceOptions
	// Progress enables live progress reporting when non-nil.
	Progress *ProgressOptions
	// OptimismWindow bounds speculation to GVT + window virtual time
	// units (ROSS's max_opt_lookahead); 0 means unbounded optimism.
	// Bounding is recommended for deep over-subscription, where
	// demand-driven scheduling hands freshly woken thread groups the
	// whole machine and unbounded speculation triggers rollback thrash.
	OptimismWindow float64
	// DisablePooling turns off the engine's event and snapshot
	// recycling, restoring per-event heap allocation. Pooling reuses
	// memory, never logic, so results are identical either way; the
	// switch exists for A/B allocation measurements and debugging, and
	// — like Trace and Progress — is excluded from CacheKey.
	DisablePooling bool
	// Series, when non-nil, records a per-GVT-round time series of the
	// run (GVT advance rate, virtual-time-horizon width and roughness,
	// rollback and commit totals, pool hit rate, queue depths).
	// Sampling only reads state — it charges zero simulated cycles —
	// so the trajectory is identical with and without it; like the
	// other observability knobs it is excluded from CacheKey.
	Series *SeriesOptions
	// Telemetry, when non-nil, routes the run's metrics into the given
	// registry instead of a private one — the serving layer's way of
	// letting concurrent jobs share one scrape target. Metrics from
	// all runs sharing the registry commingle (counters add; per-run
	// attribution needs per-run registries). Observability-only:
	// excluded from CacheKey and from checkpoint snapshots.
	Telemetry *Registry
	// Checkpoint, when non-nil, makes the run checkpointable: the
	// engine quiesces onto its committed state every Every GVT rounds
	// and a versioned snapshot is written to Dir. A checkpointed run
	// executes as a chain of segments rebuilt from each snapshot —
	// whether or not the process dies in between — so Resume from any
	// snapshot reproduces the uninterrupted run's Results exactly.
	// Segmentation perturbs speculation, so Checkpoint.Every is part of
	// CacheKey; Checkpoint.Dir is not.
	Checkpoint *CheckpointOptions
	// Chaos, when non-nil, injects deterministic faults (see
	// ChaosOptions). Chaos runs are for exercising fault tolerance and
	// are not expected to match fault-free results — or, for killed
	// threads, to complete at all.
	Chaos *ChaosOptions
}

// CheckpointOptions configures deterministic checkpoint/restore.
type CheckpointOptions struct {
	// Every is the number of GVT rounds between checkpoints (>= 1).
	Every int `json:"every"`
	// Dir receives the numbered snapshot files ("ckpt-NNNNNNNN.json").
	// Empty runs the segmented trajectory without persisting it —
	// useful for testing; Resume obviously needs a directory.
	Dir string `json:"dir,omitempty"`
}

// ChaosOptions injects deterministic, seeded faults into a run. All
// injection decisions are functions of (Seed, position), so a chaos
// run is exactly reproducible.
type ChaosOptions struct {
	// Seed drives all injection randomness (0 = the run's Seed).
	Seed uint64 `json:"seed,omitempty"`
	// DropSendRate and DelaySendRate are per-cross-thread-send
	// probabilities of losing the event or withholding it until
	// DelaySendHold further sends have happened (0 = 64). The rates
	// must sum to at most 1. Delayed events that fall below GVT before
	// release are dropped.
	DropSendRate  float64 `json:"drop_send_rate,omitempty"`
	DelaySendRate float64 `json:"delay_send_rate,omitempty"`
	DelaySendHold int     `json:"delay_send_hold,omitempty"`
	// StallRate is a per-thread-iteration probability of burning the
	// iteration without doing any work.
	StallRate float64 `json:"stall_rate,omitempty"`
	// KillAtIter, when non-zero, kills thread KillThread at that
	// main-loop iteration. The dead thread typically stalls GVT
	// forever; the run then ends only via Machine.MaxTicks, context
	// cancellation, or the serving layer's stall watchdog.
	KillThread int    `json:"kill_thread,omitempty"`
	KillAtIter uint64 `json:"kill_at_iter,omitempty"`
}

// AdaptiveGVT bounds the self-tuning GVT frequency.
type AdaptiveGVT struct {
	// MinFrequency and MaxFrequency clamp the loop-iteration interval
	// between GVT rounds.
	MinFrequency, MaxFrequency int
	// TargetUncommittedPerThread aims the per-thread peak of
	// uncommitted (speculative) events between rounds.
	TargetUncommittedPerThread int
}

// TraceOptions configures run instrumentation: GVT progression,
// rollbacks, commits, anti-messages, scheduling transitions, affinity
// repins, machine migrations and preemptions.
type TraceOptions struct {
	// Limit caps retained records (0 = 1<<20).
	Limit int
	// Ring retains the newest Limit records instead of the oldest —
	// long runs keep the tail, where the interesting behaviour usually
	// is. Dropped counts stay accurate either way.
	Ring bool
	// CSV, when non-nil, receives all records as CSV after the run.
	CSV io.Writer
	// Timeline, when non-nil, receives an ASCII per-thread activity
	// Gantt after the run ('#' scheduled, '.' de-scheduled).
	Timeline io.Writer
	// TimelineWidth is the Gantt width in columns (0 = 80).
	TimelineWidth int
	// Perfetto, when non-nil, receives the run as Chrome trace-event
	// JSON after the run — open it in ui.perfetto.dev: one track per
	// simulation thread (de-scheduled spans as slices; repins,
	// rollbacks, migrations, preemptions as instants) plus GVT and
	// committed-event counter tracks.
	Perfetto io.Writer
}

// ProgressOptions configures live progress reporting during Run.
type ProgressOptions struct {
	// Every is the GVT fraction of EndTime between reports (0 = 0.1,
	// i.e. ten reports per run).
	Every float64
	// W, when non-nil, receives one formatted progress line per report.
	W io.Writer
	// Func, when non-nil, receives each progress sample; use it to feed
	// expvar or custom dashboards.
	Func func(ProgressInfo)
}

// Registry, Series, SeriesPoint and MetricsState re-export the
// telemetry layer's types so callers outside the module can name them
// (internal packages are not importable from outside).
type (
	Registry     = telemetry.Registry
	Series       = telemetry.Series
	SeriesPoint  = telemetry.SeriesPoint
	MetricsState = telemetry.MetricsState
)

// NewRegistry returns an empty telemetry registry, for sharing one
// scrape target across runs via Config.Telemetry.
func NewRegistry() *Registry { return telemetry.NewRegistry() }

// NewSeries returns a ring buffer retaining the last limit series
// points (a default when limit <= 0), for live sampling via
// SeriesOptions.Buffer.
func NewSeries(limit int) *Series { return telemetry.NewSeries(limit) }

// SeriesOptions configures per-GVT-round time-series recording.
type SeriesOptions struct {
	// Limit bounds the number of retained points (ring buffer; 0
	// selects a default). Ignored when Buffer is set.
	Limit int
	// CSV, when non-nil, receives the retained points as CSV when the
	// run finishes (ggsim -series).
	CSV io.Writer
	// Buffer, when non-nil, is sampled into directly, so a concurrent
	// reader (the serving layer's live series endpoint) can watch the
	// run mid-flight. The caller owns the buffer's lifecycle.
	Buffer *Series
}

// ProgressInfo is one live progress sample, taken at a GVT publication.
type ProgressInfo struct {
	// GVT and EndTime position the run in virtual time.
	GVT, EndTime float64
	// CommittedEvents and ProcessedEvents are cumulative counts;
	// CommittedEventRate is committed events per machine wall second so
	// far; Efficiency is committed/processed.
	CommittedEvents, ProcessedEvents uint64
	CommittedEventRate               float64
	Efficiency                       float64
	// ActiveThreads of Threads are currently scheduled in.
	ActiveThreads, Threads int
	// GVTRounds is completed rounds; WallSeconds is machine wall time.
	GVTRounds   uint64
	WallSeconds float64
}

// String renders the sample as a one-line progress report.
func (p ProgressInfo) String() string {
	pct := 0.0
	if p.EndTime > 0 {
		pct = 100 * p.GVT / p.EndTime
	}
	return fmt.Sprintf("gvt %.2f/%.2f (%3.0f%%)  committed %d (%.3g ev/s)  eff %.1f%%  active %d/%d  rounds %d",
		p.GVT, p.EndTime, pct, p.CommittedEvents, p.CommittedEventRate,
		100*p.Efficiency, p.ActiveThreads, p.Threads, p.GVTRounds)
}

// HistSummary is a percentile digest of a run histogram. Count, Mean,
// Min and Max are exact; P50/P95/P99 interpolate within log2 buckets
// (exact to a factor of two).
type HistSummary struct {
	Count          uint64
	Mean, Min, Max float64
	P50, P95, P99  float64
}

// String renders the digest on one line ("n=0" when empty).
func (h HistSummary) String() string {
	if h.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f",
		h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
}

func histSummary(s telemetry.Summary) HistSummary {
	return HistSummary{
		Count: s.Count, Mean: s.Mean, Min: s.Min, Max: s.Max,
		P50: s.P50, P95: s.P95, P99: s.P99,
	}
}

// Results reports everything the paper's evaluation measures.
type Results struct {
	// CommittedEvents is the number of events committed below GVT; the
	// paper's primary metric is CommittedEventRate = CommittedEvents /
	// WallClockSeconds.
	CommittedEvents    uint64
	CommittedEventRate float64
	// ProcessedEvents counts speculative executions including
	// re-executions; RolledBackEvents counts undone executions (§6.5).
	ProcessedEvents, RolledBackEvents uint64
	// Rollbacks, Stragglers, AntiMessages detail optimism behaviour;
	// LazyReused/LazyCancelled count lazy-cancellation outcomes.
	Rollbacks, Stragglers, AntiMessages uint64
	LazyReused, LazyCancelled           uint64
	// WallClockSeconds is simulated machine wall time.
	WallClockSeconds float64
	// GVTCPUSeconds is CPU time spent inside GVT computation,
	// accumulated across threads (the paper's per-round numbers ×
	// rounds); GVTRounds is the number of completed rounds.
	GVTCPUSeconds float64
	GVTRounds     uint64
	// TotalCycles is all CPU cycles consumed — the instruction-count
	// proxy for the paper's PAPI numbers.
	TotalCycles uint64
	// Deactivations/Activations count demand-driven scheduling ops;
	// LockContention counts blocked acquisitions of DD-PDES's mutex;
	// Repins counts dynamic-affinity pin operations.
	Deactivations, Activations uint64
	LockContention             uint64
	Repins                     uint64
	// ContextSwitches and Migrations are machine scheduler counters;
	// CrossNodeMigrations is the NUMA-crossing subset; Preempts counts
	// involuntary context losses.
	ContextSwitches, Migrations uint64
	CrossNodeMigrations         uint64
	Preempts                    uint64
	// PeakUncommittedEvents is the high-water mark of processed events
	// awaiting fossil collection — the state-saving memory demand the
	// GVT computation frequency trades off against (§2.1).
	PeakUncommittedEvents int
	// FinalGVT is the published GVT at completion (== EndTime).
	FinalGVT float64
	// FinalGVTFrequency is the GVT round interval at completion (equals
	// the configured value unless AdaptiveGVT tuned it).
	FinalGVTFrequency int
	// TraceSummary digests the recorded trace (empty without tracing);
	// InactiveFraction is the share of thread-time spent de-scheduled.
	TraceSummary     string
	InactiveFraction float64
	// RollbackDepth digests events undone per rollback episode;
	// GVTRoundLatencyCycles digests wall cycles between consecutive GVT
	// round completions; CommitBatch digests events committed per
	// fossil-collection pass; DescheduleSpanCycles digests wall cycles
	// threads spent de-scheduled per episode.
	RollbackDepth         HistSummary
	GVTRoundLatencyCycles HistSummary
	CommitBatch           HistSummary
	DescheduleSpanCycles  HistSummary
	// Counters, Gauges and Histograms snapshot the full telemetry
	// registry by metric name (e.g. "tw.rollback_depth",
	// "machine.runq_depth"). Gauges holds only gauges that were
	// actually set during the run; Metrics carries the set flag for
	// the rest.
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistSummary
	// Series holds the per-GVT-round time series when Config.Series
	// was set (oldest first, ring-bounded). Excluded from the JSON
	// form — the serving layer exposes it through its own endpoint.
	Series []SeriesPoint `json:"-"`
	// Metrics is the lossless raw telemetry export (bucket counts,
	// gauge set flags); the serving layer folds it into its shared
	// registry. Excluded from the JSON form.
	Metrics MetricsState `json:"-"`
}

// GVTCPUSecondsPerRound is the paper's "average CPU time spent for a
// GVT computation round accumulated among threads".
func (r *Results) GVTCPUSecondsPerRound() float64 {
	if r.GVTRounds == 0 {
		return 0
	}
	return r.GVTCPUSeconds / float64(r.GVTRounds)
}

// HistogramsText renders every run histogram as one "name summary"
// line per metric, sorted by name.
func (r *Results) HistogramsText() string {
	names := make([]string, 0, len(r.Histograms))
	for name := range r.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%-32s %s\n", name, r.Histograms[name])
	}
	return b.String()
}

// Efficiency is the fraction of processed events that committed.
func (r *Results) Efficiency() float64 {
	if r.ProcessedEvents == 0 {
		return 0
	}
	return float64(r.CommittedEvents) / float64(r.ProcessedEvents)
}

// Validate checks cfg for the errors Run would reject it with, without
// running anything: missing or malformed fields, out-of-range enum
// values, impossible machine shapes, and model parameter errors. Every
// rejection wraps ErrInvalidConfig. Commands call it to fail fast with
// a one-line diagnostic; the serving layer calls it at admission time
// and maps the sentinel to HTTP 400.
func (c Config) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidConfig, fmt.Sprintf(format, args...))
	}
	if c.Model == nil {
		return fail("Config.Model is required")
	}
	if c.Threads <= 0 {
		return fail("Config.Threads must be positive")
	}
	if c.EndTime <= 0 {
		return fail("Config.EndTime must be positive")
	}
	if c.System < Baseline || c.System > GGPDES {
		return fail("unknown System %d", int(c.System))
	}
	if c.GVT < Barrier || c.GVT > WaitFree {
		return fail("unknown GVT algorithm %d", int(c.GVT))
	}
	if c.Affinity < NoAffinity || c.Affinity > DynamicAffinity {
		return fail("unknown Affinity %d", int(c.Affinity))
	}
	if c.Queue < SplayQueue || c.Queue > CalendarQueue {
		return fail("unknown Queue %d", int(c.Queue))
	}
	if c.StateSaving < CopyState || c.StateSaving > ReverseComputation {
		return fail("unknown StateSaving %d", int(c.StateSaving))
	}
	if c.Affinity == DynamicAffinity && c.System != GGPDES {
		return fail("DynamicAffinity requires the GGPDES system")
	}
	if c.GVTFrequency < 0 {
		return fail("GVTFrequency must be non-negative")
	}
	if c.ZeroCounterThreshold < 0 {
		return fail("ZeroCounterThreshold must be non-negative")
	}
	if c.BatchSize < 0 {
		return fail("BatchSize must be non-negative")
	}
	if c.LPsPerKP < 0 {
		return fail("LPsPerKP must be non-negative")
	}
	if c.OptimismWindow < 0 {
		return fail("OptimismWindow must be non-negative")
	}
	if a := c.AdaptiveGVT; a != nil {
		if a.MinFrequency < 0 || a.MaxFrequency < 0 || a.MinFrequency > a.MaxFrequency {
			return fail("AdaptiveGVT frequency bounds are invalid")
		}
	}
	if ck := c.Checkpoint; ck != nil {
		if ck.Every < 1 {
			return fail("Checkpoint.Every must be at least 1")
		}
	}
	if ch := c.Chaos; ch != nil {
		if ch.DropSendRate < 0 || ch.DropSendRate > 1 ||
			ch.DelaySendRate < 0 || ch.DelaySendRate > 1 ||
			ch.DropSendRate+ch.DelaySendRate > 1 {
			return fail("Chaos send-fault rates must be probabilities summing to at most 1")
		}
		if ch.StallRate < 0 || ch.StallRate > 1 {
			return fail("Chaos.StallRate must be a probability")
		}
		if ch.DelaySendHold < 0 {
			return fail("Chaos.DelaySendHold must be non-negative")
		}
		if ch.KillAtIter != 0 && (ch.KillThread < 0 || ch.KillThread >= c.Threads) {
			return fail("Chaos.KillThread must name a simulation thread")
		}
	}
	if _, err := c.Machine.build(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	model, err := c.Model.build(c.Threads, c.EndTime)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	if c.StateSaving == ReverseComputation {
		if _, ok := model.(tw.ReverseModel); !ok {
			return fail("ReverseComputation requires a reversible model")
		}
	}
	if c.Checkpoint != nil {
		if _, ok := model.(tw.CheckpointModel); !ok {
			return fail("Checkpoint requires a model with state codecs")
		}
	}
	return nil
}
