package ggpdes

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// cacheKeyVersion tags the canonical serialization format. Bump it
// whenever the meaning of any serialized field changes, so stale
// cached results can never be served for a semantically different
// configuration.
const cacheKeyVersion = "ggpdes-config-v2"

// CanonicalString renders every Run-relevant field of the Config —
// defaults applied — as a stable multi-line text. Two configs with the
// same canonical string produce bit-identical Results: runs are
// deterministic functions of this string. Settings that cannot affect
// the simulation trajectory — observability (Trace, Progress) and the
// memory-recycling switch (DisablePooling) — are deliberately
// excluded.
//
// It returns an error for configs Validate rejects, since those have
// no defined run semantics.
func (c Config) CanonicalString() (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	mc, err := c.Machine.build()
	if err != nil {
		return "", err
	}
	model, err := c.Model.canon(c.Threads, c.EndTime)
	if err != nil {
		return "", err
	}
	seed := c.Seed
	if seed == 0 {
		seed = 1
	}
	or := func(v, def int) int {
		if v == 0 {
			return def
		}
		return v
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", cacheKeyVersion)
	fmt.Fprintf(&b, "model=%s\n", model)
	fmt.Fprintf(&b, "threads=%d\n", c.Threads)
	fmt.Fprintf(&b, "system=%s\n", c.System)
	fmt.Fprintf(&b, "gvt=%s\n", c.GVT)
	fmt.Fprintf(&b, "affinity=%s\n", c.Affinity)
	fmt.Fprintf(&b, "endtime=%g\n", c.EndTime)
	fmt.Fprintf(&b, "seed=%d\n", seed)
	fmt.Fprintf(&b, "machine{cores=%d smt=%d freq=%g tick=%d agg=%v op=%d ctxsw=%d mig=%d numa=%d xnode=%d wake=%d barwake=%d preempt=%d lb=%d maxticks=%d}\n",
		mc.Cores, mc.SMTWidth, mc.FreqHz, mc.TickCycles, mc.SMTAggregate,
		mc.OpCycles, mc.CtxSwitchCycles, mc.MigrationCycles, mc.NUMANodes,
		mc.CrossNodeMigrationCycles, mc.WakeCycles, mc.BarrierWakePerWaiterCycles,
		mc.PreemptGranularityTicks, mc.LoadBalancePeriodTicks, mc.MaxTicks)
	fmt.Fprintf(&b, "gvtfreq=%d\n", or(c.GVTFrequency, 200))
	fmt.Fprintf(&b, "zerothreshold=%d\n", or(c.ZeroCounterThreshold, 2000))
	fmt.Fprintf(&b, "batch=%d\n", or(c.BatchSize, 8))
	fmt.Fprintf(&b, "lpsperkp=%d\n", or(c.LPsPerKP, 1))
	fmt.Fprintf(&b, "queue=%s\n", c.Queue)
	fmt.Fprintf(&b, "statesaving=%s\n", c.StateSaving)
	fmt.Fprintf(&b, "lazy=%t\n", c.LazyCancellation)
	fmt.Fprintf(&b, "optimism=%g\n", c.OptimismWindow)
	if a := c.AdaptiveGVT; a != nil {
		fmt.Fprintf(&b, "adaptive{min=%d max=%d target=%d}\n",
			a.MinFrequency, a.MaxFrequency, a.TargetUncommittedPerThread)
	} else {
		fmt.Fprintf(&b, "adaptive=nil\n")
	}
	// Checkpoint segmentation quiesces the engine at round boundaries,
	// which perturbs speculation — Every changes the trajectory. Dir is
	// pure placement and excluded.
	every := 0
	if c.Checkpoint != nil {
		every = c.Checkpoint.Every
	}
	fmt.Fprintf(&b, "checkpoint_every=%d\n", every)
	if ch := c.Chaos; ch != nil {
		cs := ch.Seed
		if cs == 0 {
			cs = seed
		}
		hold := ch.DelaySendHold
		if hold == 0 && (ch.DropSendRate > 0 || ch.DelaySendRate > 0) {
			hold = 64
		}
		fmt.Fprintf(&b, "chaos{seed=%d drop=%g delay=%g hold=%d stall=%g kill=%d@%d}\n",
			cs, ch.DropSendRate, ch.DelaySendRate, hold, ch.StallRate,
			ch.KillThread, ch.KillAtIter)
	} else {
		fmt.Fprintf(&b, "chaos=nil\n")
	}
	return b.String(), nil
}

// CacheKey hashes the canonical serialization into a content-addressed
// key ("sha256:<hex>"). Because runs are deterministic, a result
// computed for one Config may be served for any other Config with the
// same key — the contract the serving layer's result cache relies on.
func (c Config) CacheKey() (string, error) {
	s, err := c.CanonicalString()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(s))
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}
