package ggpdes_test

import (
	"fmt"

	"ggpdes"
)

// ExampleRun demonstrates the minimal API round trip. The committed
// event count is a property of the model and seed alone — every
// scheduling system commits the identical trajectory — so this output
// is deterministic.
func ExampleRun() {
	res, err := ggpdes.Run(ggpdes.Config{
		Model:                ggpdes.PHOLD{LPsPerThread: 4, Imbalance: 2},
		Threads:              8,
		System:               ggpdes.GGPDES,
		GVT:                  ggpdes.WaitFree,
		EndTime:              30,
		Seed:                 42,
		Machine:              ggpdes.SmallMachine(),
		GVTFrequency:         20,
		ZeroCounterThreshold: 60,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("committed:", res.CommittedEvents)
	fmt.Println("final GVT:", res.FinalGVT)
	fmt.Println("throughput positive:", res.CommittedEventRate > 0)
	// Output:
	// committed: 972
	// final GVT: 30
	// throughput positive: true
}

// ExampleRun_systems shows that changing the scheduling system changes
// performance, never results.
func ExampleRun_systems() {
	base := ggpdes.Config{
		Model:                ggpdes.PHOLD{LPsPerThread: 4, Imbalance: 2},
		Threads:              8,
		GVT:                  ggpdes.WaitFree,
		EndTime:              30,
		Seed:                 7,
		Machine:              ggpdes.SmallMachine(),
		GVTFrequency:         20,
		ZeroCounterThreshold: 60,
	}
	var committed []uint64
	for _, sys := range []ggpdes.System{ggpdes.Baseline, ggpdes.DDPDES, ggpdes.GGPDES} {
		cfg := base
		cfg.System = sys
		res, err := ggpdes.Run(cfg)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		committed = append(committed, res.CommittedEvents)
	}
	fmt.Println("identical trajectories:", committed[0] == committed[1] && committed[1] == committed[2])
	// Output:
	// identical trajectories: true
}
