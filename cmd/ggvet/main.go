// Command ggvet runs the repo's domain-aware static-analysis suite:
// determinism of the simulation core, event-pool hygiene, enum/codec
// exhaustiveness, telemetry naming, context plumbing, and the
// concurrency/lifecycle passes (lock order, channel-close ownership,
// goroutine tracking, stream termination). See internal/lint for the
// nine passes.
//
// Usage:
//
//	ggvet [./...]
//	ggvet -json
//	ggvet -write-inventory
//
// ggvet always analyzes the whole module containing the working
// directory (the passes are cross-package by nature), so the pattern
// argument is accepted for muscle-memory compatibility with go vet and
// ignored. -json emits newline-delimited JSON diagnostics — including
// //ggvet:allow-suppressed findings with their reasons — for CI and
// tooling. -write-inventory regenerates the checked-in metric
// inventory from the registration sites instead of linting (the file
// `make lint` then audits both directions). Exit status: 0 clean, 1
// diagnostics, 2 load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ggpdes/internal/lint"
)

func main() {
	writeInv := flag.Bool("write-inventory", false, "regenerate the metric inventory file from registration sites, then exit")
	jsonOut := flag.Bool("json", false, "emit newline-delimited JSON diagnostics (suppressed findings included with reasons)")
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ggvet:", err)
		os.Exit(2)
	}
	prog, err := lint.Load(root, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ggvet:", err)
		os.Exit(2)
	}
	cfg := lint.DefaultConfig(prog.ModulePath)
	checker := lint.NewChecker(prog, cfg)
	if *writeInv {
		text, ok := checker.InventoryText()
		if !ok {
			fmt.Fprintln(os.Stderr, "ggvet: cannot resolve the telemetry registry type")
			os.Exit(2)
		}
		path := filepath.Join(root, filepath.FromSlash(cfg.InventoryFile))
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ggvet:", err)
			os.Exit(2)
		}
		fmt.Printf("ggvet: wrote %s\n", cfg.InventoryFile)
		return
	}
	diags := checker.Run(lint.Passes())
	if *jsonOut {
		all := lint.MergeDiags(diags, checker.Suppressed())
		if err := lint.EncodeJSON(os.Stdout, root, all); err != nil {
			fmt.Fprintln(os.Stderr, "ggvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			// Print module-relative paths: stable across machines and
			// clickable from the repo root, where make lint runs.
			if rel, err := filepath.Rel(root, d.Position.Filename); err == nil && !filepath.IsLocal(d.Position.Filename) {
				d.Position.Filename = filepath.ToSlash(rel)
			}
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ggvet: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
