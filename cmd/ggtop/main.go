// Command ggtop is a live terminal dashboard for a ggserved instance.
// It polls GET /metrics (OpenMetrics text) and, when following a job,
// GET /v1/jobs/{id}/series, and redraws a one-screen view: service
// counters, per-thread GVT lag bars, and sparklines of the job's
// horizon width, roughness, rollback rate, and GVT advance rate.
//
//	ggtop -addr 127.0.0.1:8347            # service-level view
//	ggtop -addr 127.0.0.1:8347 -job job-00000001
//	ggtop -once                           # print one frame and exit
//
// ggtop is also the exposition's consumer-side validator: it parses
// /metrics with a strict OpenMetrics reader and exits non-zero on any
// malformed line, undeclared family, or incomplete histogram — which
// is how scripts/obs_smoke.sh checks the wire format end to end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ggpdes/internal/stats"
	"ggpdes/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8347", "ggserved address (host:port or URL)")
		jobID    = flag.String("job", "", "job to follow (empty = service-level view only)")
		interval = flag.Duration("interval", 2*time.Second, "poll and redraw interval")
		once     = flag.Bool("once", false, "render a single frame without clearing the screen, then exit")
		width    = flag.Int("width", 60, "sparkline width in columns")
	)
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	if *once {
		frame, err := render(client, base, *jobID, *width)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(frame)
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		frame, err := render(client, base, *jobID, *width)
		if err != nil {
			fatalf("%v", err)
		}
		// Home the cursor and clear to end of screen: redrawing in place
		// avoids the flicker of a full clear.
		fmt.Print("\x1b[H\x1b[2J" + frame)
		select {
		case <-sig:
			fmt.Println()
			return
		case <-tick.C:
		}
	}
}

// render fetches one round of data and returns the full frame.
func render(client *http.Client, base, jobID string, width int) (string, error) {
	exp, err := fetchMetrics(client, base+"/metrics")
	if err != nil {
		return "", fmt.Errorf("metrics: %w", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ggtop — %s — %s\n\n", base, time.Now().Format("15:04:05"))
	renderService(&b, exp)
	if jobID != "" {
		sr, err := fetchSeries(client, base+"/v1/jobs/"+jobID+"/series")
		if err != nil {
			return "", fmt.Errorf("series %s: %w", jobID, err)
		}
		b.WriteByte('\n')
		renderJob(&b, sr, width)
	}
	return b.String(), nil
}

// renderService prints the serving-plane counters plus merged engine
// totals from the exposition.
func renderService(b *strings.Builder, exp *exposition) {
	get := func(name string) float64 { return exp.samples["ggpdes_"+name] }
	fmt.Fprintf(b, "jobs    submitted %-8.0f completed %-8.0f failed %-6.0f in-flight %.0f\n",
		get("serve_jobs_submitted_total"), get("serve_jobs_completed_total"),
		get("serve_jobs_failed_total"), get("serve_jobs_in_flight"))
	fmt.Fprintf(b, "faults  retries %-8.0f resumes %-8.0f crashes %-6.0f stalls %.0f\n",
		get("serve_retries_total"), get("serve_resumes_total"),
		get("serve_injected_crashes_total"), get("serve_stalls_detected_total"))
	fmt.Fprintf(b, "cache   hits %-8.0f misses %-8.0f entries %.0f\n",
		get("serve_cache_hits_total"), get("serve_cache_misses_total"),
		get("serve_cache_entries"))
	committed := get("tw_committed_events_total")
	rollbacks := get("tw_rollbacks_total")
	if committed > 0 || rollbacks > 0 {
		fmt.Fprintf(b, "engine  committed %s  rollbacks %s  anti-messages %s  (all completed jobs)\n",
			stats.Count(uint64(committed)), stats.Count(uint64(rollbacks)),
			stats.Count(uint64(get("tw_anti_messages_total"))))
	}
	// The workers gauge only exists after a distributed run: unset
	// gauges never reach the exposition, so presence — not value — keys
	// the line.
	if workers, ok := exp.samples["ggpdes_dist_workers_connected"]; ok {
		fmt.Fprintf(b, "dist    workers %-8.0f relayed %s  wire %s sent / %s received\n",
			workers,
			stats.Count(uint64(get("dist_events_relayed_total")+get("dist_antis_relayed_total"))),
			stats.Count(uint64(get("dist_bytes_sent_total"))),
			stats.Count(uint64(get("dist_bytes_received_total"))))
		fmt.Fprintf(b, "        batches %-8s coalesced %s  cached reads %s\n",
			stats.Count(uint64(get("dist_batches_total"))),
			stats.Count(uint64(get("dist_ops_coalesced_total"))),
			stats.Count(uint64(get("dist_reads_cached_total"))))
	}
	// The cluster.* counters are registered only on clustered replicas
	// (cluster.New), so their presence — again, not value — keys the
	// fleet line.
	if _, ok := exp.samples["ggpdes_cluster_fills_total"]; ok {
		fmt.Fprintf(b, "fleet   peers up %-7.0f sims %-8.0f dedup(inflight) %.0f\n",
			get("cluster_peers_connected"), get("serve_simulations_total"),
			get("serve_dedup_inflight_total"))
		fmt.Fprintf(b, "        fills %-8.0f served %-8.0f delegated %-6.0f remote %-6.0f failovers %-4.0f spills %.0f\n",
			get("cluster_fills_total"), get("cluster_fills_served_total"),
			get("cluster_delegated_total"), get("cluster_remote_jobs_total"),
			get("cluster_failovers_total"), get("cluster_spills_total"))
	}
}

// renderJob prints the followed job's time-resolved view.
func renderJob(b *strings.Builder, sr *seriesResp, width int) {
	fmt.Fprintf(b, "job %s  state=%s  rounds=%d", sr.ID, sr.State, sr.Total)
	if len(sr.Points) == 0 {
		b.WriteString("  (no series points yet)\n")
		return
	}
	last := sr.Points[len(sr.Points)-1]
	fmt.Fprintf(b, "  gvt=%.4g  advance=%.3g vt/s  active=%d  queue=%d\n",
		last.GVT, last.AdvanceRate, last.ActiveThreads, last.QueueDepth)
	fmt.Fprintf(b, "events  committed %s  rolled back %s  rollbacks %s  commit ratio %.1f%%  pool hit %.1f%%\n",
		stats.Count(last.Committed), stats.Count(last.RolledBack),
		stats.Count(last.Rollbacks), last.CommitRatio*100, last.PoolHitRate*100)

	widthS := make([]float64, len(sr.Points))
	roughS := make([]float64, len(sr.Points))
	rateS := make([]float64, len(sr.Points))
	rollS := make([]float64, len(sr.Points))
	prevRoll := 0.0
	for i, pt := range sr.Points {
		widthS[i] = pt.HorizonWidth
		roughS[i] = pt.HorizonRoughness
		rateS[i] = pt.AdvanceRate
		rollS[i] = float64(pt.Rollbacks) - prevRoll
		prevRoll = float64(pt.Rollbacks)
	}
	fmt.Fprintf(b, "\nhorizon width  w   [%9.3g] %s\n", last.HorizonWidth, stats.Sparkline(widthS, width))
	fmt.Fprintf(b, "roughness      w^2 [%9.3g] %s\n", last.HorizonRoughness, stats.Sparkline(roughS, width))
	fmt.Fprintf(b, "gvt advance rate   [%9.3g] %s\n", last.AdvanceRate, stats.Sparkline(rateS, width))
	fmt.Fprintf(b, "rollbacks / round  [%9.0f] %s\n", rollS[len(rollS)-1], stats.Sparkline(rollS, width))

	// Per-thread GVT lag: how far each thread's LVT runs ahead of the
	// committed horizon. Wide spread = a rough horizon.
	b.WriteString("\nper-thread GVT lag (lvt - gvt)\n")
	span := last.MaxLVT - last.GVT
	for tid, lvt := range last.ThreadLVTs {
		lag := lvt - last.GVT
		n := 0
		if span > 0 {
			n = int(lag / span * 30)
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(b, "  t%-3d %10.4g |%s\n", tid, lag, strings.Repeat("#", n))
	}
}

// seriesResp mirrors the /v1/jobs/{id}/series payload.
type seriesResp struct {
	ID     string                  `json:"id"`
	State  string                  `json:"state"`
	Total  int                     `json:"total_points"`
	Points []telemetry.SeriesPoint `json:"points"`
}

func fetchSeries(client *http.Client, url string) (*seriesResp, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var sr seriesResp
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	return &sr, nil
}

// exposition is a parsed OpenMetrics scrape.
type exposition struct {
	samples map[string]float64 // bare name (no labels) -> value
	types   map[string]string  // family -> counter|gauge|histogram
}

func fetchMetrics(client *http.Client, url string) (*exposition, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return parseOpenMetrics(string(body))
}

// parseOpenMetrics is a strict reader for the subset of the Prometheus
// text format the repo emits. It rejects malformed sample lines,
// samples whose family lacks a TYPE declaration, and histograms
// missing _bucket/_sum/_count series, so a scrape doubles as a wire-
// format check.
func parseOpenMetrics(text string) (*exposition, error) {
	exp := &exposition{samples: map[string]float64{}, types: map[string]string{}}
	seen := map[string]map[string]bool{} // family -> suffixes seen
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 4 && f[1] == "TYPE" {
				switch f[3] {
				case "counter", "gauge", "histogram":
					exp.types[f[2]] = f[3]
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", ln+1, f[3])
				}
			}
			continue
		}
		name, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		family, suffix := familyOf(name, exp.types)
		if family == "" {
			return nil, fmt.Errorf("line %d: sample %q has no TYPE declaration", ln+1, name)
		}
		if seen[family] == nil {
			seen[family] = map[string]bool{}
		}
		seen[family][suffix] = true
		if suffix == "" || suffix == "_total" {
			exp.samples[family+suffix] = value
		}
	}
	// Every declared family must have samples, and histograms the full
	// _bucket/_sum/_count triple.
	families := make([]string, 0, len(exp.types))
	for f := range exp.types {
		families = append(families, f)
	}
	sort.Strings(families)
	for _, f := range families {
		suf := seen[f]
		switch exp.types[f] {
		case "counter":
			if !suf["_total"] {
				return nil, fmt.Errorf("counter %s declared but no %s_total sample", f, f)
			}
		case "gauge":
			if !suf[""] {
				return nil, fmt.Errorf("gauge %s declared but no sample", f)
			}
		case "histogram":
			for _, s := range []string{"_bucket", "_sum", "_count"} {
				if !suf[s] {
					return nil, fmt.Errorf("histogram %s missing %s%s series", f, f, s)
				}
			}
		}
	}
	return exp, nil
}

// parseSample splits one sample line into its metric name (labels
// stripped) and value.
func parseSample(line string) (name string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", 0, fmt.Errorf("unterminated label set in %q", line)
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		f := strings.Fields(rest)
		if len(f) != 2 {
			return "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name, rest = f[0], f[1]
	}
	if !validMetricName(name) {
		return "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value in %q: %v", line, err)
	}
	return name, v, nil
}

// familyOf maps a sample name to its declared family by stripping the
// conventional suffixes.
func familyOf(name string, types map[string]string) (family, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, s := range []string{"_total", "_bucket", "_sum", "_count"} {
		if f, ok := strings.CutSuffix(name, s); ok {
			if _, declared := types[f]; declared {
				return f, s
			}
		}
	}
	return "", ""
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ggtop: "+format+"\n", args...)
	os.Exit(1)
}
