package main

import (
	"strings"
	"testing"

	"ggpdes/internal/telemetry"
)

// scrape renders a registry through the real OpenMetrics writer and
// the real strict parser — the same round trip a live ggtop makes.
func scrape(t *testing.T, reg *telemetry.Registry) *exposition {
	t.Helper()
	var b strings.Builder
	if err := telemetry.WriteOpenMetrics(&b, reg.Export()); err != nil {
		t.Fatal(err)
	}
	exp, err := parseOpenMetrics(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

// Without a distributed run the workers gauge is never set, the
// exposition never carries it, and the dist line must not render —
// the unset-gauge skipping discipline, observed end to end.
func TestRenderServiceSkipsDistWithoutGauge(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("serve.jobs_submitted").Inc()
	var b strings.Builder
	renderService(&b, scrape(t, reg))
	if strings.Contains(b.String(), "dist") {
		t.Errorf("dist line rendered without a distributed run:\n%s", b.String())
	}
}

// With the gauge set (a distributed job completed and its metrics were
// folded into the shared registry) the dist line renders workers and
// wire traffic.
func TestRenderServiceDistLine(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge("dist.workers.connected").Set(4)
	reg.Counter("dist.events_relayed").Add(1500)
	reg.Counter("dist.antis_relayed").Add(500)
	reg.Counter("dist.bytes_sent").Add(1 << 20)
	reg.Counter("dist.bytes_received").Add(1 << 21)
	reg.Counter("dist.batches").Add(1200)
	reg.Counter("dist.ops_coalesced").Add(3400)
	reg.Counter("dist.reads_cached").Add(5600)
	var b strings.Builder
	renderService(&b, scrape(t, reg))
	out := b.String()
	for _, want := range []string{
		"dist    workers 4", "relayed 2.0K", "1.05M sent", "2.10M received",
		"batches 1.2K", "coalesced 3.4K", "cached reads 5.6K",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dist line missing %q:\n%s", want, out)
		}
	}
}

// An unclustered replica never registers cluster.* counters, so the
// fleet line must not render.
func TestRenderServiceSkipsFleetWithoutCluster(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("serve.jobs_submitted").Inc()
	var b strings.Builder
	renderService(&b, scrape(t, reg))
	if strings.Contains(b.String(), "fleet") {
		t.Errorf("fleet line rendered without clustering:\n%s", b.String())
	}
}

// A clustered replica's registry carries the cluster.* counters (all
// registered together by cluster.New), and the fleet line renders the
// dedup ledger.
func TestRenderServiceFleetLine(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge("cluster.peers.connected").Set(2)
	reg.Counter("cluster.fills").Add(12)
	reg.Counter("cluster.fills_served").Add(7)
	reg.Counter("cluster.delegated").Add(5)
	reg.Counter("cluster.remote_jobs").Add(9)
	reg.Counter("cluster.failovers").Add(1)
	reg.Counter("cluster.spills").Add(3)
	reg.Counter("serve.simulations").Add(40)
	reg.Counter("serve.dedup_inflight").Add(6)
	var b strings.Builder
	renderService(&b, scrape(t, reg))
	out := b.String()
	for _, want := range []string{
		"fleet   peers up 2", "sims 40", "dedup(inflight) 6",
		"fills 12", "served 7", "delegated 5", "remote 9", "failovers 1", "spills 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet line missing %q:\n%s", want, out)
		}
	}
}
