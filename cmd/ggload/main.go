// Command ggload drives one or more ggserved replicas: a closed-loop
// or open-loop load generator that doubles as a serving benchmark,
// plus the deterministic smoke sequences behind `make serve-smoke`,
// `make chaos-smoke`, and `make cluster-smoke`.
//
//	ggload -addr localhost:8347 -concurrency 16 -jobs 200        # closed loop
//	ggload -addr localhost:8347 -rate 50 -duration 30s           # open loop
//	ggload -addr localhost:8347 -smoke                           # CI smoke test
//	ggload -addr localhost:8347 -chaos-smoke                     # CI fault-tolerance test
//	ggload -addrs a,b,c -cluster-smoke -pids p1,p2,p3 \
//	       -checkpoint-root /dir                                 # CI cluster test
//	ggload -addrs a,b,c -sweep-bench -members 16 -dups 8         # dedup benchmark
//
// Closed loop keeps -concurrency submissions in flight, each polled to
// a terminal state before the next is issued — the sweep axis for the
// EXPERIMENTS.md throughput-vs-concurrency curve. Open loop submits at
// a fixed -rate regardless of completions, exercising the 429
// backpressure path. All transport rides the typed /v2 client
// (internal/serve/client); only the deprecation-header check in
// -smoke still touches /v1 raw.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ggpdes"
	"ggpdes/internal/serve/client"
	"ggpdes/internal/serve/cluster"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8347", "ggserved host:port")
		addrsFlag   = flag.String("addrs", "", "comma-separated replica host:ports (cluster modes; load gen round-robins)")
		concurrency = flag.Int("concurrency", 8, "closed-loop in-flight submissions")
		jobs        = flag.Int("jobs", 64, "closed-loop total jobs")
		rate        = flag.Float64("rate", 0, "open-loop submissions per second (0 = closed loop)")
		duration    = flag.Duration("duration", 10*time.Second, "open-loop run length")
		model       = flag.String("model", "phold", "workload: phold | epidemics | traffic")
		threads     = flag.Int("threads", 4, "simulation threads per job")
		lps         = flag.Int("lps", 4, "LPs per thread")
		endTime     = flag.Float64("end", 20, "virtual end time per job")
		cores       = flag.Int("cores", 8, "simulated cores per job")
		smt         = flag.Int("smt", 2, "SMT contexts per core")
		seedBase    = flag.Uint64("seed-base", 1, "first seed; each job gets seed-base+i unless -same-config")
		sameConfig  = flag.Bool("same-config", false, "submit identical configs (measures the cache path)")
		jobTimeout  = flag.Float64("job-timeout", 120, "timeout_seconds sent with each job")
		pollEvery   = flag.Duration("poll", 20*time.Millisecond, "status poll interval")
		smoke       = flag.Bool("smoke", false, "run the deterministic smoke sequence and exit 0/1")
		chaosSmoke  = flag.Bool("chaos-smoke", false, "run the fault-tolerance smoke sequence against a crash-injecting server and exit 0/1")
		cluSmoke    = flag.Bool("cluster-smoke", false, "run the clustered-serving smoke against -addrs and exit 0/1")
		pidsFlag    = flag.String("pids", "", "cluster-smoke: replica pids matching -addrs order (enables the kill/failover leg)")
		ckptRoot    = flag.String("checkpoint-root", "", "cluster-smoke: the fleet's shared checkpoint root (for kill timing)")
		sweepBench  = flag.Bool("sweep-bench", false, "submit one deduplicated sweep and print a JSON record")
		members     = flag.Int("members", 16, "sweep-bench: total sweep members")
		dups        = flag.Int("dups", 8, "sweep-bench: members that duplicate another member's config")
		freePorts   = flag.Int("free-ports", 0, "print N free 127.0.0.1 host:ports and exit (for scripts wiring static -peers fleets)")
	)
	flag.Parse()

	// Static peer fleets need every replica's address before any of
	// them starts, so :0 can't be used directly; this reserves ports by
	// binding and releasing them (the usual benign reuse race).
	if *freePorts > 0 {
		lns := make([]net.Listener, *freePorts)
		for i := range lns {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				exitOn("free-ports", err)
			}
			lns[i] = ln
		}
		for _, ln := range lns {
			fmt.Println(ln.Addr().String())
			ln.Close()
		}
		return
	}

	addrs := []string{*addr}
	if *addrsFlag != "" {
		addrs = addrs[:0]
		for _, a := range strings.Split(*addrsFlag, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
	}
	clients := make([]*client.Client, len(addrs))
	for i, a := range addrs {
		clients[i] = client.New("http://"+a, nil)
		clients[i].Poll = *pollEvery
	}
	ctx := context.Background()

	switch {
	case *smoke:
		exitOn("smoke", runSmoke(ctx, clients[0]))
		return
	case *chaosSmoke:
		exitOn("chaos smoke", runChaosSmoke(ctx, clients[0]))
		return
	case *cluSmoke:
		exitOn("cluster smoke", runClusterSmoke(ctx, addrs, clients, *pidsFlag, *ckptRoot))
		return
	case *sweepBench:
		// No "OK" banner here: stdout is exactly the one JSON record,
		// so scripts can capture it with a plain redirect.
		if err := runSweepBench(ctx, addrs, clients, *members, *dups, *endTime); err != nil {
			fmt.Fprintf(os.Stderr, "ggload: sweep bench FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}

	spec := func(i int) client.JobSpec {
		seed := *seedBase
		if !*sameConfig {
			seed += uint64(i)
		}
		var m ggpdes.Model
		switch *model {
		case "epidemics":
			m = ggpdes.Epidemics{LPsPerThread: *lps}
		case "traffic":
			m = ggpdes.Traffic{LPsPerThread: *lps}
		default:
			m = ggpdes.PHOLD{LPsPerThread: *lps}
		}
		return client.JobSpec{
			Config: ggpdes.Config{
				Model:   m,
				Threads: *threads,
				System:  ggpdes.GGPDES,
				GVT:     ggpdes.WaitFree,
				Machine: ggpdes.Machine{Cores: *cores, SMTWidth: *smt},
				EndTime: *endTime,
				Seed:    seed,
			},
			TimeoutSeconds: *jobTimeout,
		}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		states    = map[string]int{}
		rejected  atomic.Uint64
		failures  atomic.Uint64
	)
	record := func(state string, d time.Duration) {
		mu.Lock()
		states[state]++
		latencies = append(latencies, d)
		mu.Unlock()
	}

	runOne := func(i int) {
		c := clients[i%len(clients)]
		start := time.Now()
		meta, err := c.Submit(ctx, spec(i))
		if err != nil {
			var ce *client.Error
			if isClientError(err, &ce) && ce.Code == "queue_full" {
				rejected.Add(1)
			} else {
				failures.Add(1)
			}
			return
		}
		final, err := c.Wait(ctx, meta.ID)
		if err != nil {
			failures.Add(1)
			return
		}
		state := final.State
		if final.Cached {
			state = "cached"
		}
		record(state, time.Since(start))
	}

	wallStart := time.Now()
	if *rate > 0 {
		var wg sync.WaitGroup
		tick := time.NewTicker(time.Duration(float64(time.Second) / *rate))
		defer tick.Stop()
		stop := time.After(*duration)
		i := 0
	open:
		for {
			select {
			case <-stop:
				break open
			case <-tick.C:
				wg.Add(1)
				go func(i int) { defer wg.Done(); runOne(i) }(i)
				i++
			}
		}
		wg.Wait()
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					runOne(i)
				}
			}()
		}
		for i := 0; i < *jobs; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	wall := time.Since(wallStart)

	mu.Lock()
	defer mu.Unlock()
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	q := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	fmt.Printf("wall            : %s\n", wall.Round(time.Millisecond))
	fmt.Printf("completed       : %d (%.1f jobs/s)\n", len(latencies), float64(len(latencies))/wall.Seconds())
	for state, n := range states {
		fmt.Printf("  %-14s: %d\n", state, n)
	}
	fmt.Printf("rejected (429)  : %d\n", rejected.Load())
	fmt.Printf("errors          : %d\n", failures.Load())
	if len(latencies) > 0 {
		fmt.Printf("latency p50     : %s\n", q(0.50).Round(time.Millisecond))
		fmt.Printf("latency p90     : %s\n", q(0.90).Round(time.Millisecond))
		fmt.Printf("latency p99     : %s\n", q(0.99).Round(time.Millisecond))
		fmt.Printf("latency max     : %s\n", latencies[len(latencies)-1].Round(time.Millisecond))
	}
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

func exitOn(what string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ggload: %s FAILED: %v\n", what, err)
		os.Exit(1)
	}
	fmt.Printf("ggload: %s OK\n", what)
}

// isClientError unwraps err into *client.Error.
func isClientError(err error, target **client.Error) bool {
	return errors.As(err, target)
}

// pholdSpec is the smoke workload: small, fast, deterministic.
func pholdSpec(seed uint64, end float64) client.JobSpec {
	return client.JobSpec{
		Config: ggpdes.Config{
			Model:   ggpdes.PHOLD{LPsPerThread: 4},
			Threads: 4,
			System:  ggpdes.GGPDES,
			GVT:     ggpdes.WaitFree,
			Machine: ggpdes.Machine{Cores: 8, SMTWidth: 2},
			EndTime: end,
			Seed:    seed,
		},
		TimeoutSeconds: 120,
	}
}

// waitDone polls the job to a terminal state and requires done.
func waitDone(ctx context.Context, c *client.Client, id string) (client.JobMeta, error) {
	wctx, cancel := context.WithTimeout(ctx, 10*time.Minute)
	defer cancel()
	final, err := c.Wait(wctx, id)
	if err != nil {
		return final, fmt.Errorf("wait %s: %w", id, err)
	}
	if final.State != "done" {
		msg := final.LastError
		if final.Error != nil {
			msg = final.Error.Message
		}
		return final, fmt.Errorf("job %s finished %s (%s)", id, final.State, msg)
	}
	return final, nil
}

// runSmoke is the deterministic CI sequence behind `make serve-smoke`:
// healthz, submit a small PHOLD job, poll it to done, fetch the
// result, resubmit the identical spec and require a cache hit backed
// by the server's hit counter — plus the /v1 deprecation headers.
func runSmoke(ctx context.Context, c *client.Client) error {
	h, err := c.Healthz(ctx)
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if h.Status != "ok" {
		return fmt.Errorf("healthz status %q", h.Status)
	}

	spec := pholdSpec(424242, 20)
	meta, err := c.Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	if _, err := waitDone(ctx, c, meta.ID); err != nil {
		return err
	}
	_, res, err := c.Result(ctx, meta.ID)
	if err != nil {
		return fmt.Errorf("result: %w", err)
	}
	if res == nil || res.CommittedEvents == 0 {
		return fmt.Errorf("result has zero committed events")
	}

	meta2, err := c.Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("resubmit: %w", err)
	}
	if !meta2.Cached || meta2.State != "done" || meta2.Source != "cache" {
		return fmt.Errorf("resubmit not served from cache: %+v", meta2)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if stats.Counters["serve.cache_hits"] == 0 {
		return fmt.Errorf("server reports zero cache hits after a hit: %v", stats.Counters)
	}

	// The /v1 shim must announce its deprecation (RFC 8594-style).
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base()+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("v1 healthz: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("v1 healthz: HTTP %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" || !strings.Contains(resp.Header.Get("Link"), "successor-version") {
		return fmt.Errorf("v1 shim missing deprecation headers: Deprecation=%q Link=%q",
			resp.Header.Get("Deprecation"), resp.Header.Get("Link"))
	}
	return nil
}

// runChaosSmoke is the CI sequence behind `make chaos-smoke`. It
// expects a ggserved started with -crash-rate 1 -max-attempts 3
// -checkpoint-every 2: every job's early attempts are crashed mid-run,
// so completing all of them proves the checkpoint/resume/retry path
// end to end.
func runChaosSmoke(ctx context.Context, c *client.Client) error {
	ver, err := c.Version(ctx)
	if err != nil {
		return fmt.Errorf("version: %w", err)
	}
	if ver.APIRevision < 2 {
		return fmt.Errorf("server API revision %d predates fault tolerance", ver.APIRevision)
	}
	if ver.MaxAttempts < 2 {
		return fmt.Errorf("server has max_attempts %d; chaos smoke needs retries enabled", ver.MaxAttempts)
	}

	const jobs = 6
	ids := make([]string, jobs)
	for i := range ids {
		// Long enough to cross several GVT rounds, so crashed attempts
		// have checkpoints to resume from.
		spec := pholdSpec(uint64(171717+i), 40)
		spec.Config.GVTFrequency = 10
		meta, err := c.Submit(ctx, spec)
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		ids[i] = meta.ID
	}

	retried, resumed := 0, 0
	for _, id := range ids {
		final, err := waitDone(ctx, c, id)
		if err != nil {
			return fmt.Errorf("%w — fault tolerance failed", err)
		}
		if final.Attempts > 1 {
			retried++
		}
		if final.ResumedFrom != "" {
			resumed++
		}
	}
	if retried == 0 {
		return fmt.Errorf("all %d jobs completed first try; is the server running with -crash-rate 1?", jobs)
	}
	if resumed == 0 {
		return fmt.Errorf("no retried job resumed from a checkpoint")
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	for _, counter := range []string{"serve.injected_crashes", "serve.retries", "serve.resumes"} {
		if stats.Counters[counter] == 0 {
			return fmt.Errorf("counter %s is zero after chaos run: %v", counter, stats.Counters)
		}
	}
	fmt.Printf("ggload: %d/%d jobs done, %d retried, %d resumed from checkpoints (crashes=%d)\n",
		jobs, jobs, retried, resumed, stats.Counters["serve.injected_crashes"])
	return nil
}

// fleetSimulations sums serve.simulations (jobs the engine actually
// ran) across every replica — the fleet-wide dedup ledger.
func fleetSimulations(ctx context.Context, clients []*client.Client) (uint64, error) {
	var total uint64
	for _, c := range clients {
		stats, err := c.Stats(ctx)
		if err != nil {
			return 0, fmt.Errorf("stats %s: %w", c.Base(), err)
		}
		total += stats.Counters["serve.simulations"]
	}
	return total, nil
}

// runClusterSmoke is the CI sequence behind `make cluster-smoke`,
// against a 3-replica fleet sharing a checkpoint root:
//
//  1. every replica reports the full fleet healthy;
//  2. an identical config submitted to two different replicas
//     simulates exactly once fleet-wide, the second answered from the
//     owner's cache;
//  3. a sweep with duplicated members streams every member over SSE
//     and simulates only the unique configs;
//  4. (with -pids) the replica owning a long job is killed mid-run
//     and a survivor finishes the job from the shared checkpoint.
func runClusterSmoke(ctx context.Context, addrs []string, clients []*client.Client, pidsFlag, ckptRoot string) error {
	if len(addrs) < 3 {
		return fmt.Errorf("cluster smoke needs -addrs with >= 3 replicas, got %d", len(addrs))
	}

	// 1: fleet health.
	for i, c := range clients {
		h, err := c.Healthz(ctx)
		if err != nil {
			return fmt.Errorf("healthz %s: %w", addrs[i], err)
		}
		if h.Status != "ok" || h.ClusterSize != len(addrs) || len(h.Peers) != len(addrs)-1 {
			return fmt.Errorf("replica %s unhealthy: %+v", addrs[i], h)
		}
		for _, p := range h.Peers {
			if !p.OK {
				return fmt.Errorf("replica %s cannot reach peer %s: %s", addrs[i], p.Addr, p.Error)
			}
		}
	}

	// 2: duplicate submit across replicas simulates once.
	before, err := fleetSimulations(ctx, clients)
	if err != nil {
		return err
	}
	spec := pholdSpec(909090, 20)
	meta, err := clients[0].Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("submit to %s: %w", addrs[0], err)
	}
	if _, err := waitDone(ctx, clients[0], meta.ID); err != nil {
		return err
	}
	meta2, err := clients[1].Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("duplicate submit to %s: %w", addrs[1], err)
	}
	final2, err := waitDone(ctx, clients[1], meta2.ID)
	if err != nil {
		return err
	}
	if !final2.Cached {
		return fmt.Errorf("duplicate submit simulated again: %+v", final2)
	}
	after, err := fleetSimulations(ctx, clients)
	if err != nil {
		return err
	}
	if after-before != 1 {
		return fmt.Errorf("duplicate config ran %d fleet simulations, want 1", after-before)
	}
	fmt.Printf("ggload: duplicate submit deduped (source %q, 1 fleet simulation)\n", final2.Source)

	// 3: sweep with duplicated members over SSE.
	before = after
	sweep := client.SweepSpec{
		Defaults: pholdSpec(0, 20),
		Seeds:    []uint64{611, 612, 613, 614, 611, 612, 613, 614},
	}
	st, err := clients[2].Sweep(ctx, sweep)
	if err != nil {
		return fmt.Errorf("sweep submit: %w", err)
	}
	events := 0
	finalSt, err := clients[2].SweepEvents(ctx, st.ID, func(ev client.SweepEvent) error {
		if ev.Seq != events {
			return fmt.Errorf("sweep event out of order: seq %d at position %d", ev.Seq, events)
		}
		events++
		if ev.Job.State != "done" {
			return fmt.Errorf("sweep member %d finished %s", ev.Index, ev.Job.State)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("sweep events: %w", err)
	}
	if events != len(sweep.Seeds) || finalSt.State != "done" || finalSt.Done != len(sweep.Seeds) {
		return fmt.Errorf("sweep streamed %d events, final %+v", events, finalSt)
	}
	after, err = fleetSimulations(ctx, clients)
	if err != nil {
		return err
	}
	if after-before != 4 {
		return fmt.Errorf("sweep of 8 members (4 unique) ran %d fleet simulations, want 4", after-before)
	}
	fmt.Printf("ggload: sweep streamed %d members over SSE, 4 fleet simulations\n", events)

	// 4: kill the owner mid-job; a survivor resumes from the shared
	// checkpoint.
	if pidsFlag == "" {
		fmt.Println("ggload: no -pids, skipping the failover leg")
		return nil
	}
	pids := make([]int, 0, len(addrs))
	for _, p := range strings.Split(pidsFlag, ",") {
		pid, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return fmt.Errorf("bad -pids entry %q: %w", p, err)
		}
		pids = append(pids, pid)
	}
	if len(pids) != len(addrs) {
		return fmt.Errorf("-pids has %d entries for %d addrs", len(pids), len(addrs))
	}
	return runFailover(ctx, addrs, clients, pids, ckptRoot)
}

// runFailover submits a long checkpointing job to a non-owner
// replica, kills the owner once a checkpoint exists, and requires the
// submitting replica to finish the job itself from that checkpoint.
func runFailover(ctx context.Context, addrs []string, clients []*client.Client, pids []int, ckptRoot string) error {
	if ckptRoot == "" {
		return fmt.Errorf("the failover leg needs -checkpoint-root (the fleet's shared root)")
	}
	// The same ring the fleet uses tells us each config's owner; pick a
	// seed whose owner is not the replica we submit to.
	ring := cluster.New(cluster.Options{Self: addrs[0], Peers: addrs[1:]})
	var spec client.JobSpec
	victim := -1
	for seed := uint64(777000); victim < 0; seed++ {
		spec = pholdSpec(seed, 20000)
		spec.Config.GVTFrequency = 10
		// Set Checkpoint on the Config itself, not via CheckpointEvery:
		// the cadence is part of the cache key, and the key computed
		// here must match the one the fleet hashes server-side.
		spec.Config.Checkpoint = &ggpdes.CheckpointOptions{Every: 10}
		spec.TimeoutSeconds = 600
		key, err := spec.Config.CacheKey()
		if err != nil {
			return err
		}
		owner, self := ring.Owner(key)
		ownerAddr := addrs[0]
		if !self {
			ownerAddr = owner.Addr()
		}
		for i, a := range addrs {
			if a == ownerAddr && i != 0 {
				victim = i
			}
		}
	}
	key, _ := spec.Config.CacheKey()
	fmt.Printf("ggload: failover job owned by %s, submitting via %s\n", addrs[victim], addrs[0])

	meta, err := clients[0].Submit(ctx, spec)
	if err != nil {
		return fmt.Errorf("failover submit: %w", err)
	}

	// Kill only after the owner has written a checkpoint, so the
	// survivor has something to resume from.
	dir := filepath.Join(ckptRoot, "key-"+pathSafe(key))
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if names, err := filepath.Glob(filepath.Join(dir, "ckpt-*.json")); err == nil && len(names) > 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no checkpoint appeared in %s", dir)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := syscall.Kill(pids[victim], syscall.SIGKILL); err != nil {
		return fmt.Errorf("kill replica %s (pid %d): %w", addrs[victim], pids[victim], err)
	}
	fmt.Printf("ggload: killed %s (pid %d) mid-job\n", addrs[victim], pids[victim])

	final, err := waitDone(ctx, clients[0], meta.ID)
	if err != nil {
		return fmt.Errorf("job did not survive the owner's death: %w", err)
	}
	if final.ResumedFrom == "" {
		return fmt.Errorf("failover job did not resume from a checkpoint: %+v", final)
	}
	stats, err := clients[0].Stats(ctx)
	if err != nil {
		return err
	}
	if stats.Counters["cluster.failovers"] == 0 {
		return fmt.Errorf("cluster.failovers is zero after a failover: %v", stats.Counters)
	}
	fmt.Printf("ggload: job finished on the survivor, resumed from %s (failovers=%d)\n",
		final.ResumedFrom, stats.Counters["cluster.failovers"])
	return nil
}

// pathSafe mirrors the server's checkpoint-directory escaping for
// cache keys ("sha256:..." → "sha256-...").
func pathSafe(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ':', '/', '\\':
			return '-'
		}
		return r
	}, s)
}

// runSweepBench submits one sweep with duplicated members and prints
// a JSON record of the fleet's dedup behaviour: wall time, fleet
// simulations, and the fleet hit rate (members answered without a
// simulation). cluster_bench.sh embeds the line in BENCH_PR9.json.
func runSweepBench(ctx context.Context, addrs []string, clients []*client.Client, total, dup int, end float64) error {
	if dup >= total {
		return fmt.Errorf("-dups %d must be below -members %d", dup, total)
	}
	unique := total - dup
	seeds := make([]uint64, 0, total)
	for i := 0; i < total; i++ {
		// The first `unique` seeds are distinct; duplicates cycle
		// through them again.
		seeds = append(seeds, uint64(505000+i%unique))
	}
	before, err := fleetSimulations(ctx, clients)
	if err != nil {
		return err
	}
	start := time.Now()
	st, err := clients[0].Sweep(ctx, client.SweepSpec{Defaults: pholdSpec(0, end), Seeds: seeds})
	if err != nil {
		return fmt.Errorf("sweep submit: %w", err)
	}
	finalSt, err := clients[0].SweepEvents(ctx, st.ID, nil)
	if err != nil {
		return fmt.Errorf("sweep events: %w", err)
	}
	wall := time.Since(start)
	if finalSt.State != "done" || finalSt.Done != total {
		return fmt.Errorf("sweep finished %s (%d/%d done)", finalSt.State, finalSt.Done, total)
	}
	after, err := fleetSimulations(ctx, clients)
	if err != nil {
		return err
	}
	sims := after - before
	// Sum the cluster.* routing counters across the fleet so the bench
	// record shows *how* the dedup happened, not just that it did.
	// Unclustered replicas never register them, so the sums stay 0 in
	// the 1-replica arm.
	clusterCounters := map[string]uint64{}
	for _, c := range clients {
		stats, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		for name, v := range stats.Counters {
			if strings.HasPrefix(name, "cluster.") {
				clusterCounters[name] += v
			}
		}
	}
	rec := map[string]any{
		"replicas":       len(addrs),
		"members":        total,
		"duplicates":     dup,
		"unique":         unique,
		"wall_ns":        wall.Nanoseconds(),
		"simulations":    sims,
		"fleet_hit_rate": float64(total-int(sims)) / float64(total),
		"cluster":        clusterCounters,
	}
	out, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}
