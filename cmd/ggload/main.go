// Command ggload drives a ggserved instance: a closed-loop or
// open-loop load generator that doubles as a serving benchmark, plus a
// -smoke mode used by `make serve-smoke`.
//
//	ggload -addr localhost:8347 -concurrency 16 -jobs 200        # closed loop
//	ggload -addr localhost:8347 -rate 50 -duration 30s           # open loop
//	ggload -addr localhost:8347 -smoke                           # CI smoke test
//	ggload -addr localhost:8347 -chaos-smoke                     # CI fault-tolerance test
//
// Closed loop keeps -concurrency submissions in flight, each polled to
// a terminal state before the next is issued — the sweep axis for the
// EXPERIMENTS.md throughput-vs-concurrency curve. Open loop submits at
// a fixed -rate regardless of completions, exercising the 429
// backpressure path.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8347", "ggserved host:port")
		concurrency = flag.Int("concurrency", 8, "closed-loop in-flight submissions")
		jobs        = flag.Int("jobs", 64, "closed-loop total jobs")
		rate        = flag.Float64("rate", 0, "open-loop submissions per second (0 = closed loop)")
		duration    = flag.Duration("duration", 10*time.Second, "open-loop run length")
		model       = flag.String("model", "phold", "workload: phold | epidemics | traffic")
		threads     = flag.Int("threads", 4, "simulation threads per job")
		lps         = flag.Int("lps", 4, "LPs per thread")
		endTime     = flag.Float64("end", 20, "virtual end time per job")
		cores       = flag.Int("cores", 8, "simulated cores per job")
		smt         = flag.Int("smt", 2, "SMT contexts per core")
		seedBase    = flag.Uint64("seed-base", 1, "first seed; each job gets seed-base+i unless -same-config")
		sameConfig  = flag.Bool("same-config", false, "submit identical configs (measures the cache path)")
		jobTimeout  = flag.Float64("job-timeout", 120, "timeout_seconds sent with each job")
		pollEvery   = flag.Duration("poll", 20*time.Millisecond, "status poll interval")
		smoke       = flag.Bool("smoke", false, "run the deterministic smoke sequence and exit 0/1")
		chaosSmoke  = flag.Bool("chaos-smoke", false, "run the fault-tolerance smoke sequence against a crash-injecting server and exit 0/1")
	)
	flag.Parse()

	base := "http://" + *addr
	if *smoke {
		if err := runSmoke(base); err != nil {
			fmt.Fprintf(os.Stderr, "ggload: smoke FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("ggload: smoke OK")
		return
	}
	if *chaosSmoke {
		if err := runChaosSmoke(base); err != nil {
			fmt.Fprintf(os.Stderr, "ggload: chaos smoke FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("ggload: chaos smoke OK")
		return
	}

	spec := func(i int) map[string]any {
		seed := *seedBase
		if !*sameConfig {
			seed += uint64(i)
		}
		return map[string]any{
			"config": map[string]any{
				"model":    map[string]any{"name": *model, "lps_per_thread": *lps},
				"threads":  *threads,
				"system":   "gg",
				"gvt":      "waitfree",
				"machine":  map[string]any{"cores": *cores, "smt_width": *smt},
				"end_time": *endTime,
				"seed":     seed,
			},
			"timeout_seconds": *jobTimeout,
		}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		states    = map[string]int{}
		rejected  atomic.Uint64
		failures  atomic.Uint64
	)
	record := func(state string, d time.Duration) {
		mu.Lock()
		states[state]++
		latencies = append(latencies, d)
		mu.Unlock()
	}

	runOne := func(i int) {
		start := time.Now()
		st, code, err := submit(base, spec(i))
		if err != nil {
			failures.Add(1)
			return
		}
		if code == http.StatusTooManyRequests {
			rejected.Add(1)
			return
		}
		if code != http.StatusAccepted && code != http.StatusOK {
			failures.Add(1)
			return
		}
		final, err := pollTerminal(base, st.ID, *pollEvery)
		if err != nil {
			failures.Add(1)
			return
		}
		state := final.State
		if final.Cached {
			state = "cached"
		}
		record(state, time.Since(start))
	}

	wallStart := time.Now()
	if *rate > 0 {
		var wg sync.WaitGroup
		tick := time.NewTicker(time.Duration(float64(time.Second) / *rate))
		defer tick.Stop()
		stop := time.After(*duration)
		i := 0
	open:
		for {
			select {
			case <-stop:
				break open
			case <-tick.C:
				wg.Add(1)
				go func(i int) { defer wg.Done(); runOne(i) }(i)
				i++
			}
		}
		wg.Wait()
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					runOne(i)
				}
			}()
		}
		for i := 0; i < *jobs; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	wall := time.Since(wallStart)

	mu.Lock()
	defer mu.Unlock()
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	q := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	fmt.Printf("wall            : %s\n", wall.Round(time.Millisecond))
	fmt.Printf("completed       : %d (%.1f jobs/s)\n", len(latencies), float64(len(latencies))/wall.Seconds())
	for state, n := range states {
		fmt.Printf("  %-14s: %d\n", state, n)
	}
	fmt.Printf("rejected (429)  : %d\n", rejected.Load())
	fmt.Printf("errors          : %d\n", failures.Load())
	if len(latencies) > 0 {
		fmt.Printf("latency p50     : %s\n", q(0.50).Round(time.Millisecond))
		fmt.Printf("latency p90     : %s\n", q(0.90).Round(time.Millisecond))
		fmt.Printf("latency p99     : %s\n", q(0.99).Round(time.Millisecond))
		fmt.Printf("latency max     : %s\n", latencies[len(latencies)-1].Round(time.Millisecond))
	}
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// status mirrors the server's job snapshot; only the fields ggload
// reads.
type status struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Cached   bool   `json:"cached"`
	Error    string `json:"error"`
	Attempts int    `json:"attempts"`
	Resumed  string `json:"resumed_from"`
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "cancelled"
}

func submit(base string, spec any) (status, int, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return status{}, 0, err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return status{}, 0, err
	}
	defer resp.Body.Close()
	var st status
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return status{}, resp.StatusCode, err
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp.StatusCode, nil
}

func getStatus(base, id string) (status, int, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return status{}, 0, err
	}
	defer resp.Body.Close()
	var st status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return status{}, resp.StatusCode, err
	}
	return st, resp.StatusCode, nil
}

func pollTerminal(base, id string, every time.Duration) (status, error) {
	deadline := time.Now().Add(10 * time.Minute)
	for {
		st, code, err := getStatus(base, id)
		if err != nil {
			return status{}, err
		}
		if code != http.StatusOK {
			return status{}, fmt.Errorf("poll %s: HTTP %d", id, code)
		}
		if terminal(st.State) {
			return st, nil
		}
		if time.Now().After(deadline) {
			return status{}, fmt.Errorf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(every)
	}
}

// runSmoke is the deterministic CI sequence behind `make serve-smoke`:
// healthz, submit a small PHOLD job, poll it to done, fetch the
// result, resubmit the identical spec and require a cache hit backed
// by the server's hit counter.
func runSmoke(base string) error {
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}

	spec := map[string]any{
		"config": map[string]any{
			"model":    map[string]any{"name": "phold", "lps_per_thread": 4},
			"threads":  4,
			"system":   "gg",
			"gvt":      "waitfree",
			"machine":  map[string]any{"cores": 8, "smt_width": 2},
			"end_time": 20,
			"seed":     424242,
		},
		"timeout_seconds": 120,
	}
	st, code, err := submit(base, spec)
	if err != nil || code != http.StatusAccepted {
		return fmt.Errorf("submit: HTTP %d, err %v", code, err)
	}
	final, err := pollTerminal(base, st.ID, 10*time.Millisecond)
	if err != nil {
		return err
	}
	if final.State != "done" {
		return fmt.Errorf("job %s finished %s (%s)", st.ID, final.State, final.Error)
	}

	resp, err = http.Get(base + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		return fmt.Errorf("result: %w", err)
	}
	var result struct {
		Results struct {
			CommittedEvents uint64
		} `json:"results"`
	}
	err = json.NewDecoder(resp.Body).Decode(&result)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("result: HTTP %d, err %v", resp.StatusCode, err)
	}
	if result.Results.CommittedEvents == 0 {
		return fmt.Errorf("result has zero committed events")
	}

	st2, code, err := submit(base, spec)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("resubmit: HTTP %d (want 200 cache hit), err %v", code, err)
	}
	if !st2.Cached || st2.State != "done" {
		return fmt.Errorf("resubmit not served from cache: %+v", st2)
	}

	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	var stats struct {
		Counters map[string]uint64 `json:"counters"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if stats.Counters["serve.cache_hits"] == 0 {
		return fmt.Errorf("server reports zero cache hits after a hit: %v", stats.Counters)
	}
	return nil
}

// runChaosSmoke is the CI sequence behind `make chaos-smoke`. It
// expects a ggserved started with -crash-rate 1 -max-attempts 3
// -checkpoint-every 2: every job's early attempts are crashed mid-run,
// so completing all of them proves the checkpoint/resume/retry path
// end to end.
func runChaosSmoke(base string) error {
	resp, err := http.Get(base + "/v1/version")
	if err != nil {
		return fmt.Errorf("version: %w", err)
	}
	var ver struct {
		APIRevision int `json:"api_revision"`
		MaxAttempts int `json:"max_attempts"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ver)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("version: HTTP %d, err %v", resp.StatusCode, err)
	}
	if ver.APIRevision < 2 {
		return fmt.Errorf("server API revision %d predates fault tolerance", ver.APIRevision)
	}
	if ver.MaxAttempts < 2 {
		return fmt.Errorf("server has max_attempts %d; chaos smoke needs retries enabled", ver.MaxAttempts)
	}

	const jobs = 6
	ids := make([]string, jobs)
	for i := range ids {
		spec := map[string]any{
			"config": map[string]any{
				"model":   map[string]any{"name": "phold", "lps_per_thread": 4},
				"threads": 4,
				"system":  "gg",
				"gvt":     "waitfree",
				"machine": map[string]any{"cores": 8, "smt_width": 2},
				// Long enough to cross several GVT rounds, so crashed
				// attempts have checkpoints to resume from.
				"end_time":      40,
				"gvt_frequency": 10,
				"seed":          171717 + i,
			},
			"timeout_seconds": 120,
		}
		st, code, err := submit(base, spec)
		if err != nil || code != http.StatusAccepted {
			return fmt.Errorf("submit %d: HTTP %d, err %v", i, code, err)
		}
		ids[i] = st.ID
	}

	retried, resumed := 0, 0
	for _, id := range ids {
		final, err := pollTerminal(base, id, 10*time.Millisecond)
		if err != nil {
			return err
		}
		if final.State != "done" {
			return fmt.Errorf("job %s finished %s (%s) — fault tolerance failed", id, final.State, final.Error)
		}
		if final.Attempts > 1 {
			retried++
		}
		if final.Resumed != "" {
			resumed++
		}
	}
	if retried == 0 {
		return fmt.Errorf("all %d jobs completed first try; is the server running with -crash-rate 1?", jobs)
	}
	if resumed == 0 {
		return fmt.Errorf("no retried job resumed from a checkpoint")
	}

	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	var stats struct {
		Counters map[string]uint64 `json:"counters"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	for _, c := range []string{"serve.injected_crashes", "serve.retries", "serve.resumes"} {
		if stats.Counters[c] == 0 {
			return fmt.Errorf("counter %s is zero after chaos run: %v", c, stats.Counters)
		}
	}
	fmt.Printf("ggload: %d/%d jobs done, %d retried, %d resumed from checkpoints (crashes=%d)\n",
		jobs, jobs, retried, resumed, stats.Counters["serve.injected_crashes"])
	return nil
}
