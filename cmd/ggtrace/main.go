// Command ggtrace analyzes a run trace produced by ggsim -trace (or
// the ggpdes.TraceOptions.CSV writer): prints the summary, the GVT
// progression, offline percentiles, and the per-thread activity
// timeline. It can also convert the CSV into a Perfetto/Chrome trace
// JSON for ui.perfetto.dev.
//
//	ggsim -model phold -imbalance 4 -threads 16 -trace run.csv
//	ggtrace run.csv
//	ggtrace -perfetto run.json run.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"ggpdes/internal/stats"
	"ggpdes/internal/telemetry"
	"ggpdes/internal/trace"
)

func main() {
	var (
		width    = flag.Int("width", 80, "timeline width in columns")
		maxRows  = flag.Int("rows", 64, "maximum timeline rows before eliding")
		gvtSteps = flag.Int("gvt", 10, "number of GVT progression samples to print (0 = none)")
		perfetto = flag.String("perfetto", "", "also convert the trace to Perfetto JSON at this path")
		freqHz   = flag.Float64("freq", 0, "machine frequency for Perfetto timestamps (0 = raw cycles as microseconds)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ggtrace [flags] <trace.csv>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	rec, err := trace.ReadCSV(f)
	if err != nil {
		fatalf("%v", err)
	}

	threads := rec.MaxThread() + 1
	end := rec.EndCycles()
	fmt.Println(rec.Summary(threads, end))
	fmt.Println()

	if *gvtSteps > 0 {
		printGVTProgression(rec, *gvtSteps)
	}
	printPercentiles(rec)

	fmt.Print(rec.RenderTimeline(threads, end, *width, *maxRows))

	if *perfetto != "" {
		out, err := os.Create(*perfetto)
		if err != nil {
			fatalf("%v", err)
		}
		err = rec.WritePerfetto(out, trace.PerfettoOptions{
			FreqHz:    *freqHz,
			Threads:   threads,
			EndCycles: end,
		})
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("\nperfetto trace written to %s (open in ui.perfetto.dev)\n", *perfetto)
	}
}

// printGVTProgression samples the GVT series at a regular stride. The
// final sample always prints, even when the series length is not a
// multiple of the stride — the end value is the one readers care about.
func printGVTProgression(rec *trace.Recorder, steps int) {
	cycles, gvt := rec.GVTSeries()
	if len(gvt) == 0 {
		return
	}
	fmt.Println("GVT progression (wall cycles -> gvt):")
	stride := len(gvt) / steps
	if stride < 1 {
		stride = 1
	}
	last := len(gvt) - 1
	for i := 0; i < len(gvt); i += stride {
		fmt.Printf("  %12s  %10.4f\n", stats.Count(cycles[i]), gvt[i])
		if i == last {
			last = -1
		}
	}
	if last >= 0 {
		fmt.Printf("  %12s  %10.4f\n", stats.Count(cycles[last]), gvt[last])
	}
	fmt.Println()
}

// printPercentiles recomputes the run's key distributions offline from
// the raw records: rollback depth (KindRollback aux), commit batch
// size (KindCommit aux), and GVT round latency (deltas between
// consecutive GVT samples' wall cycles).
func printPercentiles(rec *trace.Recorder) {
	var depth, batch, latency telemetry.Histogram
	for _, r := range rec.Records() {
		switch r.Kind {
		case trace.KindRollback:
			depth.Observe(float64(r.Aux))
		case trace.KindCommit:
			batch.Observe(float64(r.Aux))
		}
	}
	cycles, _ := rec.GVTSeries()
	for i := 1; i < len(cycles); i++ {
		latency.Observe(float64(cycles[i] - cycles[i-1]))
	}
	any := false
	for _, h := range []struct {
		name string
		hist *telemetry.Histogram
	}{
		{"rollback depth", &depth},
		{"commit batch", &batch},
		{"gvt round latency", &latency},
	} {
		s := h.hist.Summary()
		if s.Count == 0 {
			continue
		}
		if !any {
			fmt.Println("offline percentiles:")
			any = true
		}
		fmt.Printf("  %-18s n=%-8d p50=%-10.1f p95=%-10.1f p99=%-10.1f max=%.1f\n",
			h.name, s.Count, s.P50, s.P95, s.P99, s.Max)
	}
	if any {
		fmt.Println()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ggtrace: "+format+"\n", args...)
	os.Exit(1)
}
