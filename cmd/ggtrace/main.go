// Command ggtrace analyzes a run trace produced by ggsim -trace (or
// the ggpdes.TraceOptions.CSV writer): prints the summary, the GVT
// progression, and the per-thread activity timeline.
//
//	ggsim -model phold -imbalance 4 -threads 16 -trace run.csv
//	ggtrace run.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"ggpdes/internal/stats"
	"ggpdes/internal/trace"
)

func main() {
	var (
		width    = flag.Int("width", 80, "timeline width in columns")
		maxRows  = flag.Int("rows", 64, "maximum timeline rows before eliding")
		gvtSteps = flag.Int("gvt", 10, "number of GVT progression samples to print (0 = none)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ggtrace [flags] <trace.csv>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	rec, err := trace.ReadCSV(f)
	if err != nil {
		fatalf("%v", err)
	}

	threads := rec.MaxThread() + 1
	end := rec.EndCycles()
	fmt.Println(rec.Summary(threads, end))
	fmt.Println()

	if *gvtSteps > 0 {
		cycles, gvt := rec.GVTSeries()
		if len(gvt) > 0 {
			fmt.Println("GVT progression (wall cycles -> gvt):")
			stride := len(gvt) / *gvtSteps
			if stride < 1 {
				stride = 1
			}
			for i := 0; i < len(gvt); i += stride {
				fmt.Printf("  %12s  %10.4f\n", stats.Count(cycles[i]), gvt[i])
			}
			fmt.Println()
		}
	}

	fmt.Print(rec.RenderTimeline(threads, end, *width, *maxRows))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ggtrace: "+format+"\n", args...)
	os.Exit(1)
}
