// Distributed mode: -workers N shards the run across worker
// processes. With -worker-addrs the workers are externally started
// ggworker processes; without it ggsim spawns N copies of itself in
// the internal -worker-serve mode, which runs the same serve loop as
// ggworker on an ephemeral port. Either way the coordinator side is
// ggpdes.RunDistributed, and the Results are byte-identical to the
// in-process run (modulo the dist.* wire metrics).
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"ggpdes"
	"ggpdes/internal/dist"
)

// addrPrefix is the line both ggworker and -worker-serve print once
// listening; the spawning parent scans child stdout for it to learn
// the ephemeral port.
const addrPrefix = "ggworker: listening on "

// serveWorkerShard is the internal -worker-serve mode: ggworker's
// serve loop inside the ggsim binary, so -workers needs no second
// binary on PATH.
func serveWorkerShard() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("%s%s\n", addrPrefix, ln.Addr())
	return ggpdes.ListenAndServeWorker(ln)
}

// distWorkerCount resolves how many workers the flag pair names.
func distWorkerCount(workers int, addrs string) int {
	if addrs != "" {
		return len(strings.Split(addrs, ","))
	}
	return workers
}

// runDistributed connects (or spawns) the workers and drives the
// sharded run.
func runDistributed(ctx context.Context, cfg ggpdes.Config, workers int, addrList string, attempts int, wireMode string, noBatch bool) (*ggpdes.Results, error) {
	wire, err := dist.ParseWire(wireMode)
	if err != nil {
		return nil, err
	}
	var addrs []string
	if addrList != "" {
		for _, a := range strings.Split(addrList, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return nil, fmt.Errorf("-worker-addrs has an empty entry")
			}
			addrs = append(addrs, a)
		}
		if workers > 0 && workers != len(addrs) {
			return nil, fmt.Errorf("-workers %d but -worker-addrs names %d workers", workers, len(addrs))
		}
	} else {
		spawned, stop, err := spawnWorkers(workers)
		if err != nil {
			return nil, err
		}
		defer stop()
		addrs = spawned
	}
	opts := ggpdes.DistOptions{
		Workers: len(addrs),
		Dial: func(shard int) (io.ReadWriteCloser, error) {
			return net.Dial("tcp", addrs[shard])
		},
		MaxAttempts: attempts,
		Wire:        wire,
		NoBatch:     noBatch,
	}
	return ggpdes.RunDistributed(ctx, cfg, opts)
}

// spawnWorkers re-executes this binary n times in -worker-serve mode
// and collects the listen addresses the children print. The returned
// stop function reaps the children: after a clean run the coordinator
// has already asked them to shut down and they exit on their own;
// anything still alive (failed run) is killed.
func spawnWorkers(n int) ([]string, func(), error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, fmt.Errorf("locating own binary to spawn workers: %w", err)
	}
	var cmds []*exec.Cmd
	stop := func() {
		for _, cmd := range cmds {
			done := make(chan struct{})
			go func(c *exec.Cmd) { c.Wait(); close(done) }(cmd)
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				cmd.Process.Kill()
				<-done
			}
		}
	}
	var addrs []string
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, "-worker-serve")
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			stop()
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			stop()
			return nil, nil, fmt.Errorf("spawning worker %d: %w", i, err)
		}
		cmds = append(cmds, cmd)
		sc := bufio.NewScanner(out)
		addr := ""
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, addrPrefix) {
				addr = strings.TrimPrefix(line, addrPrefix)
				break
			}
		}
		if addr == "" {
			cmd.Process.Kill()
			stop()
			return nil, nil, fmt.Errorf("worker %d exited before announcing its address", i)
		}
		// Keep draining stdout so the child never blocks on a full pipe.
		//ggvet:allow(bounded by the child process: the copy returns on pipe EOF when the worker exits, and stop() reaps the worker via Kill+Wait)
		go io.Copy(io.Discard, out)
		addrs = append(addrs, addr)
	}
	return addrs, stop, nil
}
