// Command ggsim runs a single GG-PDES simulation and prints its
// metrics — the quickest way to poke at one configuration.
//
// Examples:
//
//	ggsim -model phold -imbalance 4 -threads 64 -system gg -gvt async
//	ggsim -model epidemics -lockdown 8 -threads 32 -system baseline
//	ggsim -model traffic -gradient 0.5 -threads 16 -affinity dynamic
//	ggsim -model phold -checkpoint-every 4 -checkpoint-dir /tmp/ck
//	ggsim -resume /tmp/ck/ckpt-00000004.json
//	ggsim -model phold -threads 16 -workers 4
//	ggsim -model phold -threads 16 -worker-addrs 10.0.0.2:7000,10.0.0.3:7000
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"ggpdes"
	"ggpdes/internal/profiling"
	"ggpdes/internal/stats"
)

func main() {
	var (
		modelName  = flag.String("model", "phold", "workload: phold | epidemics | traffic")
		threads    = flag.Int("threads", 32, "simulation threads (POSIX threads in the paper)")
		system     = flag.String("system", "gg", "scheduling system: baseline | dd | gg")
		gvtAlg     = flag.String("gvt", "async", "GVT algorithm: sync (barrier) | async (wait-free)")
		affinity   = flag.String("affinity", "constant", "CPU affinity: none | constant | dynamic")
		endTime    = flag.Float64("end", 60, "virtual end time")
		seed       = flag.Uint64("seed", 1, "random seed")
		lps        = flag.Int("lps", 8, "LPs per thread")
		imbalance  = flag.Int("imbalance", 1, "PHOLD 1-K imbalance (1 = balanced)")
		nonLinear  = flag.Bool("nonlinear", false, "PHOLD non-linear locality groups")
		lockdown   = flag.Int("lockdown", 4, "epidemics lock-down groups K ((K-1)/K locked)")
		gradient   = flag.Float64("gradient", 0.35, "traffic density gradient")
		cores      = flag.Int("cores", 16, "simulated cores")
		smt        = flag.Int("smt", 2, "SMT contexts per core")
		gvtFreq    = flag.Int("gvt-freq", 40, "loop iterations per GVT round")
		zeroThr    = flag.Int("zero-threshold", 400, "empty-queue iterations before deactivation")
		queue      = flag.String("queue", "splay", "pending queue: splay | heap | calendar")
		optimism   = flag.Float64("optimism", 0, "optimism window in virtual time (0 = unbounded)")
		saving     = flag.String("statesaving", "copy", "rollback mechanism: copy | reverse")
		traceFile  = flag.String("trace", "", "write a CSV trace of the run to this file")
		seriesOut  = flag.String("series", "", "write the per-GVT-round time series CSV to this file (- = stdout)")
		seriesLim  = flag.Int("series-limit", 0, "series ring size in GVT rounds (0 = default)")
		seriesPlot = flag.Bool("series-plot", false, "print horizon-width and rollback sparklines from the series")
		traceRing  = flag.Bool("trace-ring", false, "keep only the newest -trace-limit trace records (ring buffer)")
		traceLim   = flag.Int("trace-limit", 0, "trace record cap (0 = default)")
		perfetto   = flag.String("perfetto", "", "write a Perfetto/Chrome trace JSON of the run to this file")
		progress   = flag.Bool("progress", false, "print live progress lines to stderr as GVT advances")
		progEvery  = flag.Float64("progress-every", 0, "virtual-time interval between progress lines (0 = 10% of -end)")
		expvarAt   = flag.String("expvar", "", "serve live run metrics over expvar at this address (e.g. :8123)")
		hist       = flag.Bool("hist", false, "print every run histogram (implies -v percentile lines)")
		lazy       = flag.Bool("lazy", false, "lazy cancellation (defer anti-messages across rollbacks)")
		timeout    = flag.Duration("timeout", 0, "abort the run after this much real time (0 = no limit)")
		nopool     = flag.Bool("nopool", false, "disable event/snapshot recycling (A/B allocation measurements)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProf    = flag.String("memprofile", "", "write a heap profile after the run to this file (go tool pprof)")
		verbose    = flag.Bool("v", false, "print the full metric set")

		workers     = flag.Int("workers", 0, "shard the run across N worker processes (0 = in-process); spawns local workers unless -worker-addrs is set")
		workerAddrs = flag.String("worker-addrs", "", "comma-separated ggworker addresses to shard across instead of spawning")
		workerTries = flag.Int("worker-attempts", 3, "attempts per segment before a lost worker connection aborts the run")
		workerServe = flag.Bool("worker-serve", false, "internal: serve one worker shard on an ephemeral port (what -workers spawns)")
		wireMode    = flag.String("wire", "binary", "distributed hot-path frame encoding: binary or json")
		noBatch     = flag.Bool("nobatch", false, "distributed: disable op coalescing and read caching (one JSON round trip per op; implies per-op json frames)")

		ckptEvery = flag.Int("checkpoint-every", 0, "checkpoint every N GVT rounds (0 = off)")
		ckptDir   = flag.String("checkpoint-dir", "", "write checkpoint files to this directory")
		resume    = flag.String("resume", "", "resume from this checkpoint file instead of starting a run (model/config flags are ignored)")

		chaosSeed  = flag.Uint64("chaos-seed", 0, "fault injection seed (0 = run seed); any -chaos-* flag enables injection")
		chaosDrop  = flag.Float64("chaos-drop", 0, "probability a cross-thread send is lost")
		chaosDelay = flag.Float64("chaos-delay", 0, "probability a cross-thread send is withheld")
		chaosHold  = flag.Int("chaos-delay-hold", 0, "sends to withhold a delayed event for (0 = 64)")
		chaosStall = flag.Float64("chaos-stall", 0, "per-thread-iteration probability of burning the iteration")
		chaosKill  = flag.Int("chaos-kill-thread", 0, "thread to kill at -chaos-kill-iter")
		chaosIter  = flag.Uint64("chaos-kill-iter", 0, "main-loop iteration at which the thread dies (0 = never)")
	)
	flag.Parse()

	if *workerServe {
		if err := serveWorkerShard(); err != nil {
			fatalf("%v", err)
		}
		return
	}
	distributed := *workers > 0 || *workerAddrs != ""

	resuming := *resume != ""
	if resuming && distributed {
		fatalf("-resume is in-process only; restart the distributed run from its checkpoint directory instead")
	}
	var cfg ggpdes.Config
	if !resuming {
		cfg = ggpdes.Config{
			Threads:              *threads,
			EndTime:              *endTime,
			Seed:                 *seed,
			Machine:              ggpdes.Machine{Cores: *cores, SMTWidth: *smt, FreqHz: 1.3e9},
			GVTFrequency:         *gvtFreq,
			ZeroCounterThreshold: *zeroThr,
			OptimismWindow:       *optimism,
			LazyCancellation:     *lazy,
			DisablePooling:       *nopool,
		}

		switch strings.ToLower(*modelName) {
		case "phold":
			cfg.Model = ggpdes.PHOLD{LPsPerThread: *lps, Imbalance: *imbalance, NonLinear: *nonLinear}
		case "epidemics":
			cfg.Model = ggpdes.Epidemics{LPsPerThread: *lps, LockdownGroups: *lockdown, ContactRate: 3, TransmissionProb: 0.5}
		case "traffic":
			cfg.Model = ggpdes.Traffic{LPsPerThread: *lps, DensityGradient: *gradient}
		default:
			fatalf("unknown model %q", *modelName)
		}

		var err error
		if cfg.System, err = ggpdes.ParseSystem(*system); err != nil {
			fatalf("%v", err)
		}
		if cfg.GVT, err = ggpdes.ParseGVT(*gvtAlg); err != nil {
			fatalf("%v", err)
		}
		if cfg.Affinity, err = ggpdes.ParseAffinity(*affinity); err != nil {
			fatalf("%v", err)
		}
		if cfg.StateSaving, err = ggpdes.ParseStateSaving(*saving); err != nil {
			fatalf("%v", err)
		}
		if cfg.Queue, err = ggpdes.ParseQueue(*queue); err != nil {
			fatalf("%v", err)
		}
		if *ckptEvery > 0 {
			cfg.Checkpoint = &ggpdes.CheckpointOptions{Every: *ckptEvery, Dir: *ckptDir}
		}
		if *chaosDrop > 0 || *chaosDelay > 0 || *chaosStall > 0 || *chaosIter > 0 {
			cfg.Chaos = &ggpdes.ChaosOptions{
				Seed:          *chaosSeed,
				DropSendRate:  *chaosDrop,
				DelaySendRate: *chaosDelay,
				DelaySendHold: *chaosHold,
				StallRate:     *chaosStall,
				KillThread:    *chaosKill,
				KillAtIter:    *chaosIter,
			}
		}
		if err := cfg.Validate(); err != nil {
			fatalf("%v", err)
		}
	}

	var traceOpts *ggpdes.TraceOptions
	var traceOut, perfettoOut *os.File
	if *traceFile != "" || *perfetto != "" || *traceRing || *traceLim > 0 {
		traceOpts = &ggpdes.TraceOptions{Ring: *traceRing, Limit: *traceLim}
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		traceOut = f
		traceOpts.CSV = f
	}
	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		perfettoOut = f
		traceOpts.Perfetto = f
	}

	var progOpts *ggpdes.ProgressOptions
	if *progress || *expvarAt != "" {
		progOpts = &ggpdes.ProgressOptions{}
		if *progEvery > 0 && !resuming {
			// A resumed run's EndTime lives in the snapshot, so the
			// interval cannot be normalised here; the 10% default applies.
			progOpts.Every = *progEvery / cfg.EndTime
		}
		if *progress {
			progOpts.W = os.Stderr
		}
		if *expvarAt != "" {
			progOpts.Func = publishExpvar(*expvarAt)
		}
	}
	var seriesOpts *ggpdes.SeriesOptions
	var seriesFile *os.File
	if *seriesOut != "" || *seriesPlot || *seriesLim > 0 {
		seriesOpts = &ggpdes.SeriesOptions{Limit: *seriesLim}
	}
	if *seriesOut != "" {
		if *seriesOut == "-" {
			seriesOpts.CSV = os.Stdout
		} else {
			f, err := os.Create(*seriesOut)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			seriesFile = f
			seriesOpts.CSV = f
		}
	}
	cfg.Trace = traceOpts
	cfg.Progress = progOpts
	cfg.Series = seriesOpts

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fatalf("%v", err)
	}
	var res *ggpdes.Results
	if resuming {
		res, err = ggpdes.ResumeContext(ctx, *resume, &ggpdes.ResumeOptions{
			Trace:         traceOpts,
			Progress:      progOpts,
			Series:        seriesOpts,
			CheckpointDir: *ckptDir,
		})
	} else if distributed {
		res, err = runDistributed(ctx, cfg, *workers, *workerAddrs, *workerTries, *wireMode, *noBatch)
	} else {
		res, err = ggpdes.RunContext(ctx, cfg)
	}
	if perr := stopProf(); perr != nil {
		fatalf("%v", perr)
	}
	if err != nil {
		if ctx.Err() != nil {
			fatalf("timed out after %s: %v", *timeout, err)
		}
		fatalf("%v", err)
	}
	if traceOut != nil {
		fmt.Printf("trace written to %s\n", traceOut.Name())
	}
	if perfettoOut != nil {
		fmt.Printf("perfetto trace written to %s (open in ui.perfetto.dev)\n", perfettoOut.Name())
	}
	if res.TraceSummary != "" {
		fmt.Println(res.TraceSummary)
	}
	if seriesFile != nil {
		fmt.Printf("series written to %s (%d rounds)\n", seriesFile.Name(), len(res.Series))
	}
	if *seriesPlot && len(res.Series) > 0 {
		width := make([]float64, len(res.Series))
		rough := make([]float64, len(res.Series))
		rolled := make([]float64, len(res.Series))
		for i, pt := range res.Series {
			width[i] = pt.HorizonWidth
			rough[i] = pt.HorizonRoughness
			rolled[i] = float64(pt.Rollbacks)
		}
		fmt.Printf("horizon width  w     : %s\n", stats.Sparkline(width, 60))
		fmt.Printf("roughness      w^2   : %s\n", stats.Sparkline(rough, 60))
		fmt.Printf("rollbacks (cum)      : %s\n", stats.Sparkline(rolled, 60))
	}

	if resuming {
		fmt.Printf("resumed from %s\n", *resume)
	} else {
		fmt.Printf("%s | %s | %s GVT | %s affinity | %d threads on %dx%d contexts\n",
			cfg.Model.Name(), cfg.System, cfg.GVT, cfg.Affinity, cfg.Threads, *cores, *smt)
	}
	if distributed {
		fmt.Printf("distributed          : %d workers, %s relayed cross-shard\n",
			distWorkerCount(*workers, *workerAddrs),
			stats.Count(res.Counters["dist.events_relayed"]+res.Counters["dist.antis_relayed"]))
	}
	fmt.Printf("committed event rate : %s\n", stats.Rate(res.CommittedEventRate))
	fmt.Printf("committed events     : %s\n", stats.Count(res.CommittedEvents))
	fmt.Printf("wall clock           : %s (simulated)\n", stats.Seconds(res.WallClockSeconds))
	fmt.Printf("efficiency           : %.1f%% (%s rolled back of %s processed)\n",
		res.Efficiency()*100, stats.Count(res.RolledBackEvents), stats.Count(res.ProcessedEvents))
	fmt.Printf("GVT                  : %d rounds, %s CPU per round\n",
		res.GVTRounds, stats.Seconds(res.GVTCPUSecondsPerRound()))
	if *verbose {
		fmt.Printf("total cycles         : %s\n", stats.Count(res.TotalCycles))
		fmt.Printf("deactivations        : %d, activations: %d\n", res.Deactivations, res.Activations)
		fmt.Printf("lock contention      : %d (DD-PDES mutex)\n", res.LockContention)
		fmt.Printf("dynamic repins       : %d\n", res.Repins)
		fmt.Printf("context switches     : %d, migrations: %d\n", res.ContextSwitches, res.Migrations)
		fmt.Printf("stragglers           : %d, anti-messages: %d, rollbacks: %d\n",
			res.Stragglers, res.AntiMessages, res.Rollbacks)
		if res.LazyReused+res.LazyCancelled > 0 {
			fmt.Printf("lazy cancellation    : %d sends re-adopted, %d annihilated late\n",
				res.LazyReused, res.LazyCancelled)
		}
	}
	if *verbose || *hist {
		fmt.Printf("rollback depth       : %s\n", res.RollbackDepth)
		fmt.Printf("gvt round latency    : %s cycles\n", res.GVTRoundLatencyCycles)
		fmt.Printf("commit batch         : %s events\n", res.CommitBatch)
		fmt.Printf("deschedule span      : %s cycles\n", res.DescheduleSpanCycles)
	}
	if *hist {
		fmt.Println()
		fmt.Print(res.HistogramsText())
	}
}

// publishExpvar starts an HTTP server exposing run progress under
// /debug/vars and returns the ProgressInfo callback that feeds it.
// The server goroutine dies with the process; ggsim is a one-shot
// tool, so there is nothing to tear down.
func publishExpvar(addr string) func(ggpdes.ProgressInfo) {
	gvt := new(expvar.Float)
	committed := new(expvar.Int)
	rate := new(expvar.Float)
	efficiency := new(expvar.Float)
	active := new(expvar.Int)
	rounds := new(expvar.Int)
	m := new(expvar.Map).Init()
	m.Set("gvt", gvt)
	m.Set("committed_events", committed)
	m.Set("committed_event_rate", rate)
	m.Set("efficiency", efficiency)
	m.Set("active_threads", active)
	m.Set("gvt_rounds", rounds)
	expvar.Publish("ggsim", m)
	//ggvet:allow(process-lifetime debug listener: the expvar server serves until the simulation process exits; there is no shutdown phase to join)
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "ggsim: expvar server: %v\n", err)
		}
	}()
	return func(p ggpdes.ProgressInfo) {
		gvt.Set(p.GVT)
		committed.Set(int64(p.CommittedEvents))
		rate.Set(p.CommittedEventRate)
		efficiency.Set(p.Efficiency)
		active.Set(int64(p.ActiveThreads))
		rounds.Set(int64(p.GVTRounds))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ggsim: "+format+"\n", args...)
	os.Exit(2)
}
