// Command ggserved serves simulations over HTTP: a bounded job queue
// with 429 backpressure, a GOMAXPROCS worker pool, a deterministic
// content-addressed result cache, and checkpoint-based retry for
// crashed or stalled runs.
//
//	ggserved -addr :8347
//	curl -s localhost:8347/v1/jobs -d '{"config":{"model":{"name":"phold"},"threads":8,"end_time":30}}'
//	curl -s localhost:8347/v1/jobs/job-00000001
//
// Observability: GET /metrics serves the OpenMetrics exposition of
// the serve.* plane plus the engine metrics of every completed job;
// GET /v1/jobs/{id}/series streams a job's per-GVT-round time series;
// -pprof-addr opens net/http/pprof on a separate listener so profiling
// never shares a port with the public API.
//
// Clustering: -peers (or GGSERVED_PEERS) lists the other replicas of
// a static fleet. Replicas route jobs by consistent hashing on the
// config's cache key — the owner simulates, everyone else fills from
// its cache or delegates to it — so identical submissions anywhere in
// the fleet simulate once. A shared -checkpoint-root lets any replica
// resume a dead peer's job from its latest checkpoint.
//
// SIGTERM/SIGINT drains gracefully: admission stops (503), running
// jobs finish, then the process exits.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ggpdes/internal/serve"
	"ggpdes/internal/serve/cluster"
	"ggpdes/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":8347", "listen address (use :0 for an ephemeral port)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using :0)")
		workers    = flag.Int("workers", 0, "concurrent simulation runs (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 64, "jobs admitted but not yet running before 429s")
		cacheSize  = flag.Int("cache-entries", 256, "result cache bound (negative disables)")
		retainJobs = flag.Int("retain-jobs", 4096, "finished jobs kept queryable (negative = unlimited)")
		defTimeout = flag.Duration("default-timeout", 0, "per-job real-time deadline unless the spec sets one (0 = none)")
		drainGrace = flag.Duration("drain-timeout", 5*time.Minute, "how long to wait for in-flight jobs on shutdown")
		maxTries   = flag.Int("max-attempts", 1, "runs per job before it fails (retries resume from the latest checkpoint)")
		backoff    = flag.Duration("retry-backoff", 0, "base exponential-backoff delay between attempts (0 = 25ms)")
		ckptRoot   = flag.String("checkpoint-root", "", "directory for per-job checkpoints (empty = private temp dir)")
		ckptEvery  = flag.Int("checkpoint-every", 0, "checkpoint every N GVT rounds unless the spec sets it (0 = off)")
		stallAfter = flag.Duration("stall-timeout", 0, "kill an attempt whose GVT has not advanced for this long (0 = off)")
		crashRate  = flag.Float64("crash-rate", 0, "chaos: probability a non-final attempt is crashed mid-run")
		chaosSeed  = flag.Uint64("chaos-seed", 0, "chaos: crash-injection seed (0 = 1)")
		seriesLim  = flag.Int("series-limit", 0, "per-job live series ring size in GVT rounds (0 = default, negative disables)")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		peersFlag  = flag.String("peers", "", "comma-separated peer addresses (host:port) forming a static fleet (or GGSERVED_PEERS)")
		advertise  = flag.String("advertise", "", "address peers reach this replica at (default: the bound listen address)")
	)
	flag.Parse()

	peersSpec := *peersFlag
	if peersSpec == "" {
		peersSpec = os.Getenv("GGSERVED_PEERS")
	}
	var peers []string
	for _, p := range strings.Split(peersSpec, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}

	// Listen before building the manager: the cluster layer needs this
	// replica's advertised address, and with -addr :0 that only exists
	// once the socket is bound.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fatalf("%v", err)
		}
	}

	reg := telemetry.NewRegistry()
	var clu *cluster.Cluster
	if len(peers) > 0 {
		self := *advertise
		if self == "" {
			self = ln.Addr().String()
		}
		clu = cluster.New(cluster.Options{Self: self, Peers: peers, Registry: reg})
		fmt.Fprintf(os.Stderr, "ggserved: clustered as %s with peers %s\n", self, strings.Join(peers, ","))
	}

	// Every job context derives from procCtx, so cancelling it after an
	// incomplete drain hard-stops stragglers instead of abandoning them.
	procCtx, stopJobs := context.WithCancel(context.Background())
	defer stopJobs()

	mgr := serve.NewContext(procCtx, serve.Options{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		CacheEntries:    *cacheSize,
		RetainJobs:      *retainJobs,
		DefaultTimeout:  *defTimeout,
		MaxAttempts:     *maxTries,
		RetryBackoff:    *backoff,
		CheckpointRoot:  *ckptRoot,
		CheckpointEvery: *ckptEvery,
		StallTimeout:    *stallAfter,
		CrashRate:       *crashRate,
		ChaosSeed:       *chaosSeed,
		SeriesLimit:     *seriesLim,
		Registry:        reg,
		Cluster:         clu,
	})

	// Publish the serve registry under expvar so one scrape covers the
	// Go runtime vars and the service counters.
	expvar.Publish("ggserved", expvar.Func(func() any {
		reg := mgr.Registry()
		return map[string]any{
			"counters":   reg.Counters(),
			"gauges":     reg.Gauges(),
			"histograms": reg.Histograms(),
		}
	}))

	mux := http.NewServeMux()
	api := mgr.Handler()
	mux.Handle("/v1/", api)
	mux.Handle("/v2/", api)
	mux.Handle("/metrics", mgr.MetricsHandler())
	mux.Handle("/debug/vars", expvar.Handler())

	// pprof goes on its own listener: profiling endpoints expose heap
	// contents and should never ride on the public API port by accident.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatalf("pprof listen: %v", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(os.Stderr, "ggserved: pprof on %s\n", pln.Addr())
		//ggvet:allow(process-lifetime debug listener: the pprof server serves until exit and holds no job state worth draining)
		go func() { _ = http.Serve(pln, pmux) }()
	}

	fmt.Fprintf(os.Stderr, "ggserved: listening on %s (%d workers, queue %d, cache %d)\n",
		ln.Addr(), mgr.Workers(), mgr.QueueDepth(), *cacheSize)

	srv := &http.Server{Handler: mux}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "ggserved: %s, draining (up to %s)\n", s, *drainGrace)
	case err := <-done:
		fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := mgr.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ggserved: drain incomplete: %v, cancelling in-flight jobs\n", err)
		stopJobs()
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "ggserved: shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "ggserved: bye")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ggserved: "+format+"\n", args...)
	os.Exit(2)
}
