// Command ggworker hosts one shard of a distributed Time Warp run. It
// listens for a coordinator (ggsim -workers, or anything driving
// ggpdes.RunDistributed), builds the shard engine the coordinator's
// init frame describes, executes forwarded operations in arrival
// order, and exits after a clean shutdown frame.
//
// A dropped connection does not end the process: the listener keeps
// accepting, so a coordinator recovering from a fault can redial and
// re-initialize the shard from its last per-shard checkpoint.
//
// Usage:
//
//	ggworker [-listen 127.0.0.1:0] [-addr-file path]
//
// The bound address is printed on stdout ("ggworker: listening on
// ADDR") and, with -addr-file, written to a file the coordinator's
// launcher can poll — which is how ggsim discovers the ephemeral ports
// of the workers it spawns.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"ggpdes"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on; port 0 picks an ephemeral port")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ggworker: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ggworker: %v\n", err)
		os.Exit(1)
	}
	addr := ln.Addr().String()
	fmt.Printf("ggworker: listening on %s\n", addr)
	if *addrFile != "" {
		// Write-then-rename so a polling launcher never reads a torn
		// address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ggworker: %v\n", err)
			os.Exit(1)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fmt.Fprintf(os.Stderr, "ggworker: %v\n", err)
			os.Exit(1)
		}
	}

	if err := ggpdes.ListenAndServeWorker(ln); err != nil {
		fmt.Fprintf(os.Stderr, "ggworker: %v\n", err)
		os.Exit(1)
	}
}
