// Command ggbench regenerates the paper's tables and figures.
//
//	ggbench -list               enumerate experiments
//	ggbench -exp fig4b          run one experiment
//	ggbench -all                run everything
//	ggbench -all -md > EXPERIMENTS.md   emit the markdown report
//	ggbench -scale paper        full KNL-7230 scale (slow)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ggpdes/internal/harness"
	"ggpdes/internal/profiling"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiments and exit")
		expID     = flag.String("exp", "", "run a single experiment by id")
		all       = flag.Bool("all", false, "run every experiment")
		md        = flag.Bool("md", false, "emit markdown (EXPERIMENTS.md body) instead of text")
		scaleName = flag.String("scale", "default", "scale: tiny | default | paper")
		quiet     = flag.Bool("q", false, "suppress per-run progress on stderr")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write a heap profile after the runs to this file (go tool pprof)")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var scale harness.Scale
	switch *scaleName {
	case "tiny":
		scale = harness.Tiny()
	case "default":
		scale = harness.Default()
	case "paper":
		scale = harness.Paper()
	default:
		fmt.Fprintf(os.Stderr, "ggbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}

	var exps []*harness.Experiment
	switch {
	case *expID != "":
		e := harness.Get(*expID)
		if e == nil {
			fmt.Fprintf(os.Stderr, "ggbench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		exps = []*harness.Experiment{e}
	case *all:
		exps = harness.Experiments()
	default:
		flag.Usage()
		os.Exit(2)
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ggbench: %v\n", err)
		os.Exit(2)
	}
	start := time.Now()
	var results []*harness.Result
	for _, e := range exps {
		if progress != nil {
			fmt.Fprintf(progress, "== %s (%s) ==\n", e.ID, e.Title)
		}
		r, err := e.Run(scale, progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ggbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		results = append(results, r)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "ggbench: %v\n", err)
		os.Exit(2)
	}
	if *md {
		harness.WriteMarkdown(os.Stdout, scale, results, time.Since(start))
	} else {
		harness.WriteText(os.Stdout, results)
	}
}
